package experiments

import (
	"fmt"
	"io"
	"time"

	"tcrowd/internal/assign"
	"tcrowd/internal/core"
	"tcrowd/internal/simulate"
	"tcrowd/internal/stats"
)

// Fig11Point measures assignment latency at one answers-per-task level.
type Fig11Point struct {
	AnswersPerTask float64
	// SecondsPerAssignment is the wall time of one structure-aware
	// selection over all candidate cells (parallel scoring).
	SecondsPerAssignment float64
}

// Fig11 measures the cost of computing structure-aware information gain
// for all candidate tasks when a worker arrives, as the answer set grows.
func Fig11(cfg Config) ([]Fig11Point, error) {
	c := cfg.withDefaults()
	levels := []int{2, 3, 4, 5}
	reps := 5
	if c.Quick {
		levels = []int{2, 3}
		reps = 2
	}
	ds, err := simulate.StandIn("Celebrity", c.Seed)
	if err != nil {
		return nil, err
	}
	var out []Fig11Point
	for _, lvl := range levels {
		crowd := simulate.NewCrowd(ds, c.Seed+int64(lvl))
		log := crowd.FixedAssignment(lvl)
		sys := assign.NewTCrowdSystem(c.Seed)
		sys.Opts = core.Options{MaxIter: 8}
		if err := sys.Refresh(ds.Table, log); err != nil {
			return nil, err
		}
		var total time.Duration
		for r := 0; r < reps; r++ {
			u := ds.Workers[r%len(ds.Workers)].ID
			start := time.Now()
			sys.Select(u, ds.Table.NumCols(), log)
			total += time.Since(start)
		}
		out = append(out, Fig11Point{
			AnswersPerTask:       float64(lvl),
			SecondsPerAssignment: total.Seconds() / float64(reps),
		})
	}
	return out, nil
}

func runFig11(w io.Writer, cfg Config) error {
	pts, err := Fig11(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-14s %22s\n", "Ans/Task", "Seconds/Assignment")
	for _, pt := range pts {
		fmt.Fprintf(w, "%-14.1f %22.4f\n", pt.AnswersPerTask, pt.SecondsPerAssignment)
	}
	return nil
}

// Fig12Result carries both efficiency measurements of Fig. 12.
type Fig12Result struct {
	// Objective is the EM objective per iteration on Celebrity (12a).
	Objective []float64
	// Runtime maps answer-set sizes to inference wall time (12b).
	Runtime []Fig12RuntimePoint
}

// Fig12RuntimePoint is one (answers, seconds) measurement.
type Fig12RuntimePoint struct {
	Answers int
	Seconds float64
	// AnswersPerSecond is the derived throughput.
	AnswersPerSecond float64
}

// Fig12 traces the EM objective (12a) and measures inference runtime as a
// function of the number of answers (12b); the paper reports near-linear
// scaling.
func Fig12(cfg Config) (Fig12Result, error) {
	c := cfg.withDefaults()
	var res Fig12Result

	ds, log, err := fixedLog("Celebrity", c.Seed, 0)
	if err != nil {
		return res, err
	}
	m, err := core.Infer(ds.Table, log, core.Options{TrackObjective: true, MaxIter: 20})
	if err != nil {
		return res, err
	}
	res.Objective = m.ObjTrace

	sizes := []int{1000, 5000, 20000, 100000}
	if c.Quick {
		sizes = []int{1000, 5000}
	}
	for _, target := range sizes {
		// Scale the table so 5 answers/task yields ~target answers.
		cells := target / 5
		rows := cells / 10
		if rows < 5 {
			rows = 5
		}
		sds := simulate.Generate(stats.NewRNG(c.Seed+int64(target)), simulate.TableConfig{
			Rows: rows, Cols: 10, CatRatio: 0.5,
			Population: simulate.PopulationConfig{N: 100},
		})
		slog := simulate.NewCrowd(sds, c.Seed+int64(target)+1).FixedAssignment(5)
		start := time.Now()
		// Fixed iteration count isolates per-answer cost from convergence
		// variation.
		if _, err := core.Infer(sds.Table, slog, core.Options{MaxIter: 10, Tol: 1e-12}); err != nil {
			return res, err
		}
		secs := time.Since(start).Seconds()
		res.Runtime = append(res.Runtime, Fig12RuntimePoint{
			Answers:          slog.Len(),
			Seconds:          secs,
			AnswersPerSecond: float64(slog.Len()) / secs,
		})
	}
	return res, nil
}

func runFig12(w io.Writer, cfg Config) error {
	res, err := Fig12(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "(a) EM objective per iteration (Celebrity):")
	for i, obj := range res.Objective {
		fmt.Fprintf(w, "  iter %2d: %.2f\n", i+1, obj)
	}
	fmt.Fprintln(w, "(b) inference runtime vs number of answers:")
	fmt.Fprintf(w, "%-10s %12s %14s\n", "Answers", "Seconds", "Answers/sec")
	for _, pt := range res.Runtime {
		fmt.Fprintf(w, "%-10d %12.3f %14.0f\n", pt.Answers, pt.Seconds, pt.AnswersPerSecond)
	}
	return nil
}
