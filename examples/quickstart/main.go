// Quickstart: define a tiny celebrity table (the paper's running example,
// Tables 1-2), feed in a handful of worker answers, and run T-Crowd truth
// inference to recover the values and the workers' qualities.
package main

import (
	"fmt"
	"log"

	"tcrowd"
)

func main() {
	schema := tcrowd.Schema{
		Key: "Picture",
		Columns: []tcrowd.Column{
			{Name: "Name", Type: tcrowd.Categorical, Labels: []string{
				"Gwyneth Paltrow", "Jet Li", "James Purefoy", "Ciaran Hinds"}},
			{Name: "Nationality", Type: tcrowd.Categorical, Labels: []string{
				"United States", "China", "Great Britain", "Canada"}},
			{Name: "Age", Type: tcrowd.Continuous, Min: 0, Max: 120},
			{Name: "Height", Type: tcrowd.Continuous, Min: 140, Max: 210},
		},
	}
	table := tcrowd.NewTable(schema, 3)

	// The answers of Table 2 of the paper (heights in cm).
	answers := tcrowd.NewAnswerLog()
	add := func(w string, row, col int, v tcrowd.Value) {
		answers.Add(tcrowd.Answer{Worker: tcrowd.WorkerID(w), Cell: tcrowd.Cell{Row: row, Col: col}, Value: v})
	}
	// u1: good worker.
	add("u1", 0, 0, tcrowd.LabelValue(0)) // Gwyneth Paltrow
	add("u1", 0, 1, tcrowd.LabelValue(0)) // United States
	add("u1", 0, 2, tcrowd.NumberValue(39))
	add("u1", 0, 3, tcrowd.NumberValue(175))
	add("u1", 1, 0, tcrowd.LabelValue(1)) // Jet Li
	add("u1", 1, 1, tcrowd.LabelValue(1)) // China
	add("u1", 1, 2, tcrowd.NumberValue(47))
	add("u1", 1, 3, tcrowd.NumberValue(168))
	// u2: shaky worker.
	add("u2", 0, 0, tcrowd.LabelValue(0))
	add("u2", 0, 1, tcrowd.LabelValue(3)) // Canada (wrong)
	add("u2", 0, 2, tcrowd.NumberValue(45))
	add("u2", 0, 3, tcrowd.NumberValue(180))
	add("u2", 2, 0, tcrowd.LabelValue(2)) // James Purefoy
	add("u2", 2, 1, tcrowd.LabelValue(2)) // Great Britain
	add("u2", 2, 2, tcrowd.NumberValue(51))
	add("u2", 2, 3, tcrowd.NumberValue(183))
	// u3: knows Jet Li, not James Purefoy.
	add("u3", 1, 0, tcrowd.LabelValue(1))
	add("u3", 1, 1, tcrowd.LabelValue(1))
	add("u3", 1, 2, tcrowd.NumberValue(45))
	add("u3", 1, 3, tcrowd.NumberValue(168))
	add("u3", 2, 0, tcrowd.LabelValue(3)) // Ciaran Hinds (wrong)
	add("u3", 2, 1, tcrowd.LabelValue(0)) // United States (wrong)
	add("u3", 2, 2, tcrowd.NumberValue(35))
	add("u3", 2, 3, tcrowd.NumberValue(180))
	// u4: agrees with u1 on picture 1, breaks ties elsewhere.
	add("u4", 0, 0, tcrowd.LabelValue(0))
	add("u4", 0, 1, tcrowd.LabelValue(0))
	add("u4", 0, 2, tcrowd.NumberValue(41))
	add("u4", 2, 0, tcrowd.LabelValue(2))
	add("u4", 2, 1, tcrowd.LabelValue(2))
	add("u4", 2, 2, tcrowd.NumberValue(49))

	res, err := tcrowd.Infer(table, answers, tcrowd.InferOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("EM converged after %d iterations\n\n", res.Iterations)
	fmt.Println("Estimated table:")
	for i := 0; i < table.NumRows(); i++ {
		fmt.Printf("  %s:", table.Entities[i])
		for j, col := range schema.Columns {
			v := res.Estimates[i][j]
			switch {
			case v.IsNone():
				fmt.Printf("  %s=?", col.Name)
			case col.Type == tcrowd.Categorical:
				fmt.Printf("  %s=%s", col.Name, col.Labels[v.L])
			default:
				fmt.Printf("  %s=%.1f", col.Name, v.X)
			}
		}
		fmt.Println()
	}

	fmt.Println("\nWorker quality (unified across datatypes):")
	for _, u := range []tcrowd.WorkerID{"u1", "u2", "u3", "u4"} {
		fmt.Printf("  %s: q=%.3f\n", u, res.WorkerQuality[u])
	}
}
