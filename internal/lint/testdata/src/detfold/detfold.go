// Package detfold exercises the detfold analyzer: map-range folds,
// wall-clock reads and globally seeded randomness in a package marked
// deterministic.
//
//tcrowd:deterministic
package detfold

import (
	"math/rand"
	"time"
)

func sumMap(m map[int]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want `float accumulation inside map range`
	}
	return total
}

func collectMap(m map[int]float64) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k) // want `append inside map range`
	}
	return keys
}

func sumSlice(xs []float64) float64 {
	var total float64
	for _, v := range xs {
		total += v // slice order is canonical: fine
	}
	return total
}

func intCountMap(m map[int]int) int {
	n := 0
	for range m {
		n++ // integer adds commute bitwise: fine
	}
	return n
}

func clock() int64 {
	return time.Now().UnixNano() // want `time.Now`
}

func elapsed(since time.Time) time.Duration {
	return time.Since(since) // want `time.Since`
}

func draw() float64 {
	return rand.Float64() // want `globally seeded`
}

func seeded(rng *rand.Rand) float64 {
	return rng.Float64() // per-instance seeded source: fine
}

func construct() *rand.Rand {
	return rand.New(rand.NewSource(42)) // constructors are fine
}

func waivedClock() time.Time {
	//lint:allow detfold diagnostics only, never folded into model state
	return time.Now() // waived `time.Now`
}
