package platform

import (
	"bytes"
	"errors"
	"testing"

	"tcrowd/internal/simulate"
	"tcrowd/internal/stats"
	"tcrowd/internal/tabular"
)

func demoSchema() tabular.Schema {
	return tabular.Schema{
		Key: "item",
		Columns: []tabular.Column{
			{Name: "category", Type: tabular.Categorical, Labels: []string{"book", "movie", "game"}},
			{Name: "price", Type: tabular.Continuous, Min: 0, Max: 500},
		},
	}
}

func TestCreateProjectValidation(t *testing.T) {
	p := New(1)
	if _, err := p.CreateProject("a", demoSchema(), ProjectConfig{Rows: 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.CreateProject("a", demoSchema(), ProjectConfig{Rows: 3}); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("duplicate accepted: %v", err)
	}
	if _, err := p.CreateProject("b", demoSchema(), ProjectConfig{Rows: 0}); err == nil {
		t.Fatal("zero rows accepted")
	}
	if _, err := p.CreateProject("c", tabular.Schema{}, ProjectConfig{Rows: 1}); err == nil {
		t.Fatal("invalid schema accepted")
	}
	if _, err := p.CreateProject("d", demoSchema(), ProjectConfig{Rows: 2, Entities: []string{"only-one"}}); err == nil {
		t.Fatal("entity mismatch accepted")
	}
	if ids := p.ProjectIDs(); len(ids) != 1 || ids[0] != "a" {
		t.Fatalf("ProjectIDs: %v", ids)
	}
	if _, err := p.Project("missing"); !errors.Is(err, ErrNoProject) {
		t.Fatal("phantom project")
	}
}

func TestRequestTasksDefaultPolicy(t *testing.T) {
	p := New(2)
	if _, err := p.CreateProject("a", demoSchema(), ProjectConfig{Rows: 4}); err != nil {
		t.Fatal(err)
	}
	tasks, err := p.RequestTasks("a", "w1", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 3 {
		t.Fatalf("got %d tasks", len(tasks))
	}
	for _, task := range tasks {
		if task.Column != "category" && task.Column != "price" {
			t.Fatalf("unknown column %q", task.Column)
		}
		if task.Type == "categorical" && len(task.Labels) == 0 {
			t.Fatal("categorical task without labels")
		}
		if task.Entity == "" {
			t.Fatal("task without entity")
		}
	}
	// Default k = number of columns.
	tasks, err = p.RequestTasks("a", "w2", 0)
	if err != nil || len(tasks) != 2 {
		t.Fatalf("default k: %d %v", len(tasks), err)
	}
	if _, err := p.RequestTasks("nope", "w", 1); !errors.Is(err, ErrNoProject) {
		t.Fatal("phantom project tasks")
	}
}

func TestFewestAnswersFirstBalances(t *testing.T) {
	p := New(3)
	if _, err := p.CreateProject("a", demoSchema(), ProjectConfig{Rows: 3}); err != nil {
		t.Fatal(err)
	}
	// w1 answers cell (0, category); the next worker should be steered to
	// less-covered cells first.
	if err := p.Submit("a", "w1", 0, "category", tabular.LabelValue(0)); err != nil {
		t.Fatal(err)
	}
	tasks, err := p.RequestTasks("a", "w2", 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range tasks {
		if task.Row == 0 && task.Column == "category" {
			t.Fatal("answered cell assigned before empty cells")
		}
	}
}

func TestSubmitValidation(t *testing.T) {
	p := New(4)
	if _, err := p.CreateProject("a", demoSchema(), ProjectConfig{Rows: 2}); err != nil {
		t.Fatal(err)
	}
	ok := p.Submit("a", "w1", 0, "price", tabular.NumberValue(42))
	if ok != nil {
		t.Fatal(ok)
	}
	if err := p.Submit("a", "w1", 0, "price", tabular.NumberValue(43)); !errors.Is(err, ErrAlreadyAnswered) {
		t.Fatal("double answer accepted")
	}
	if err := p.Submit("a", "w1", 0, "zzz", tabular.NumberValue(1)); err == nil {
		t.Fatal("unknown column accepted")
	}
	if err := p.Submit("a", "w1", 99, "price", tabular.NumberValue(1)); err == nil {
		t.Fatal("bad row accepted")
	}
	if err := p.Submit("a", "w1", 0, "category", tabular.NumberValue(1)); err == nil {
		t.Fatal("mistyped value accepted")
	}
	if err := p.Submit("a", "", 1, "price", tabular.NumberValue(1)); err == nil {
		t.Fatal("empty worker accepted")
	}
	if err := p.Submit("zzz", "w", 0, "price", tabular.NumberValue(1)); !errors.Is(err, ErrNoProject) {
		t.Fatal("phantom project accepted")
	}
	st, err := p.Stats("a")
	if err != nil || st.Answers != 1 || st.Workers != 1 || st.Cells != 4 {
		t.Fatalf("stats: %+v %v", st, err)
	}
}

func TestEndToEndInference(t *testing.T) {
	p := New(5)
	if _, err := p.CreateProject("a", demoSchema(), ProjectConfig{Rows: 3}); err != nil {
		t.Fatal(err)
	}
	// Three workers agree that row 0 is a movie priced ~100.
	for _, w := range []tabular.WorkerID{"w1", "w2", "w3"} {
		if err := p.Submit("a", w, 0, "category", tabular.LabelValue(1)); err != nil {
			t.Fatal(err)
		}
	}
	for i, x := range []float64{99, 100, 101} {
		w := tabular.WorkerID([]string{"w1", "w2", "w3"}[i])
		if err := p.Submit("a", w, 0, "price", tabular.NumberValue(x)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := p.RunInference("a")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Estimates[0][0].Equal(tabular.LabelValue(1)) {
		t.Fatalf("category estimate %v", res.Estimates[0][0])
	}
	price := res.Estimates[0][1].X
	if price < 95 || price > 105 {
		t.Fatalf("price estimate %v", price)
	}
	for _, q := range res.WorkerQuality {
		if q <= 0 || q > 1 {
			t.Fatalf("quality %v", q)
		}
	}
	if _, err := p.RunInference("ghost"); !errors.Is(err, ErrNoProject) {
		t.Fatal("phantom inference")
	}
}

func TestTCrowdAssignmentEngine(t *testing.T) {
	p := New(6)
	if _, err := p.CreateProject("a", demoSchema(), ProjectConfig{Rows: 4, UseTCrowdAssignment: true, RefreshEvery: 2}); err != nil {
		t.Fatal(err)
	}
	// Cold start: engine has no answers, falls back to fewest-answers.
	tasks, err := p.RequestTasks("a", "w1", 2)
	if err != nil || len(tasks) != 2 {
		t.Fatalf("cold start: %v %v", tasks, err)
	}
	for _, task := range tasks {
		j := 0
		if task.Column == "price" {
			j = 1
		}
		var v tabular.Value
		if j == 0 {
			v = tabular.LabelValue(0)
		} else {
			v = tabular.NumberValue(50)
		}
		if err := p.Submit("a", "w1", task.Row, task.Column, v); err != nil {
			t.Fatal(err)
		}
	}
	// Warm path: engine refreshes and selects by information gain.
	tasks, err = p.RequestTasks("a", "w2", 3)
	if err != nil || len(tasks) == 0 {
		t.Fatalf("warm start: %v %v", tasks, err)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	p := New(7)
	if _, err := p.CreateProject("a", demoSchema(), ProjectConfig{Rows: 2, RefreshEvery: 3}); err != nil {
		t.Fatal(err)
	}
	if err := p.Submit("a", "w1", 0, "category", tabular.LabelValue(2)); err != nil {
		t.Fatal(err)
	}
	if err := p.Submit("a", "w2", 1, "price", tabular.NumberValue(7.5)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf, 8)
	if err != nil {
		t.Fatal(err)
	}
	proj, err := back.Project("a")
	if err != nil {
		t.Fatal(err)
	}
	if proj.Log.Len() != 2 {
		t.Fatalf("lost answers: %d", proj.Log.Len())
	}
	a := proj.Log.At(0)
	if a.Worker != "w1" || !a.Value.Equal(tabular.LabelValue(2)) {
		t.Fatalf("answer mangled: %+v", a)
	}
	if proj.refreshEvery != 3 {
		t.Fatalf("refresh cadence lost across save/load: %d", proj.refreshEvery)
	}
	// Corrupt input.
	if _, err := Load(bytes.NewBufferString("not json"), 1); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestPlatformWithSimulatedCrowd(t *testing.T) {
	// Full integration: simulated workers pull tasks from the platform,
	// answer from the generative model, and inference recovers the truth
	// better than chance.
	ds := simulate.Generate(stats.NewRNG(31), simulate.TableConfig{Rows: 12, Cols: 4, CatRatio: 0.5,
		Population: simulate.PopulationConfig{N: 15}})
	crowd := simulate.NewCrowd(ds, 32)

	p := New(33)
	if _, err := p.CreateProject("sim", ds.Table.Schema, ProjectConfig{Rows: ds.Table.NumRows()}); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 4; round++ {
		for wi := range ds.Workers {
			w := &ds.Workers[wi]
			tasks, err := p.RequestTasks("sim", w.ID, 4)
			if err != nil {
				t.Fatal(err)
			}
			for _, task := range tasks {
				j := ds.Table.Schema.ColumnIndex(task.Column)
				v := crowd.AnswerValue(w, tabular.Cell{Row: task.Row, Col: j})
				if err := p.Submit("sim", w.ID, task.Row, task.Column, v); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	res, err := p.RunInference("sim")
	if err != nil {
		t.Fatal(err)
	}
	correct, total := 0, 0
	for i := 0; i < ds.Table.NumRows(); i++ {
		for j, col := range ds.Table.Schema.Columns {
			if col.Type != tabular.Categorical {
				continue
			}
			if res.Estimates[i][j].IsNone() {
				continue
			}
			total++
			if res.Estimates[i][j].Equal(ds.Table.Truth[i][j]) {
				correct++
			}
		}
	}
	if total == 0 || float64(correct)/float64(total) < 0.7 {
		t.Fatalf("platform pipeline recovered %d/%d categorical truths", correct, total)
	}
}
