package wal

import (
	"bytes"
	"os"
	"testing"
)

// FuzzReplay feeds arbitrary bytes to the frame decoder as a segment
// file. Invariants, whatever the input:
//
//   - never panics;
//   - no phantom records: re-encoding everything decoded must reproduce
//     the byte prefix the decoder claims is good, so every returned
//     record is bit-exact with a CRC-valid frame at its stated offset;
//   - Open on the same bytes boots (single segment → damage is a torn
//     tail by definition), returns those same records, and truncates the
//     file to exactly the good prefix.
func FuzzReplay(f *testing.F) {
	var valid []byte
	for _, r := range []Record{{Type: 2, Data: []byte("create")}, {Type: 3, Data: []byte("batch")}, {Type: 3, Data: nil}} {
		frame, _ := encodeFrame(r)
		valid = append(valid, frame...)
	}
	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:len(valid)-3])             // torn final frame
	f.Add(append(valid, 0, 0, 0, 0))        // zero-filled tail
	f.Add(bytes.Repeat([]byte{0}, 64))      // all zeros
	f.Add(bytes.Repeat([]byte{0xff}, 64))   // max length fields
	f.Add(append([]byte{9, 0, 0, 0}, 1, 2)) // length beyond data

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, good, derr := decodeFrames(data)
		if good < 0 || good > int64(len(data)) {
			t.Fatalf("good offset %d outside [0, %d]", good, len(data))
		}
		var reenc []byte
		for _, r := range recs {
			frame, err := encodeFrame(r)
			if err != nil {
				t.Fatalf("decoded record does not re-encode: %v", err)
			}
			reenc = append(reenc, frame...)
		}
		if !bytes.Equal(reenc, data[:good]) {
			t.Fatalf("phantom records: re-encoded %d bytes != good prefix of %d bytes", len(reenc), good)
		}
		if derr == nil && good != int64(len(data)) {
			t.Fatalf("decoder reported success but consumed %d of %d bytes", good, len(data))
		}

		// The same bytes as an on-disk segment must boot via truncation.
		fs := NewMemFS()
		fs.MkdirAll("p/x", 0o755)
		if len(data) > 0 {
			fh, err := fs.OpenFile("p/x/"+segmentName(1), os.O_CREATE|os.O_WRONLY, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			fh.Write(data)
			fh.Sync()
			fh.Close()
		}
		l, rep, err := Open("p/x", Options{FS: fs, CheckpointType: 1})
		if err != nil {
			t.Fatalf("Open on fuzzed single segment refused to boot: %v", err)
		}
		defer l.Close()
		if len(rep.Records) != len(recs) {
			t.Fatalf("Open replayed %d records, decoder saw %d", len(rep.Records), len(recs))
		}
		if info, err := fs.Stat("p/x/" + segmentName(1)); err == nil && info.Size() != good {
			t.Fatalf("segment size after boot = %d, want truncated to %d", info.Size(), good)
		}
	})
}
