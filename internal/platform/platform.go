// Package platform implements the crowdsourcing-platform substrate of the
// paper's system architecture (Fig. 1): a requester registers the schema of
// the tabular data to collect, tasks are published, incoming workers are
// dynamically assigned cells (the AMT "external-HIT" pattern, Sec. 3), their
// answers are logged durably, and truth inference runs over the collected
// answers on demand.
//
// # Multi-project serving
//
// A platform hosts many projects and serves them through a shard scheduler
// (internal/shard): every project has a stable home shard (consistent
// hashing on the project ID), and each shard is one worker goroutine with a
// bounded, coalescing queue of refresh jobs. This gives three serving
// properties the shared-pool design lacked:
//
//   - Isolation: a hot project's refresh storm occupies only its own shard;
//     projects on other shards keep refreshing.
//   - Backpressure: when a shard queue fills, the platform sheds refresh
//     work with an error wrapping shard.ErrShardSaturated instead of
//     queueing it unboundedly (answers are still recorded — data is never
//     dropped, only inference work is).
//   - Non-blocking reads: every completed refresh publishes an immutable
//     InferenceResult snapshot behind an atomic pointer (copy-on-publish);
//     Snapshot serves the latest one without ever waiting on EM.
//
// Submit enqueues an asynchronous refresh on the project's refresh cadence
// (immediately until a first snapshot exists, then every RefreshEvery-th
// answer), so published snapshots track the log with bounded lag without
// running EM per answer. RunInference is the strongly consistent read: it
// routes through the same per-shard queue and waits, returning estimates
// that reflect every answer recorded before the call.
//
// # Lock order
//
// When both are needed, a project's assignMu is acquired before the
// platform mutex (refreshAssign and RequestTasks hold assignMu while
// growShadow/Select briefly take p.mu to copy the delta); the reverse
// order would deadlock against them. The directive below makes
// tcrowd-lint enforce it.
//
//tcrowd:lockorder Project.assignMu < Platform.mu
package platform

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tcrowd/api"
	"tcrowd/internal/assign"
	"tcrowd/internal/core"
	"tcrowd/internal/metrics"
	"tcrowd/internal/reputation"
	"tcrowd/internal/shard"
	"tcrowd/internal/stats"
	"tcrowd/internal/tabular"
	"tcrowd/internal/wal"
)

// Common errors.
var (
	ErrNoProject       = errors.New("platform: no such project")
	ErrDuplicateID     = errors.New("platform: project id already exists")
	ErrAlreadyAnswered = errors.New("platform: worker already answered this cell")
	// ErrNoSnapshot is returned by Snapshot before the project's first
	// refresh has published estimates (and by SnapshotAt for a generation
	// newer than anything published).
	ErrNoSnapshot = errors.New("platform: no estimates published yet")
	// ErrGenerationGone is returned by SnapshotAt when the requested
	// generation has been evicted from the retained ring: the caller's
	// pinned read outlived the retention window and must restart from the
	// latest generation.
	ErrGenerationGone = errors.New("platform: generation evicted from retained ring")
	// ErrWorkerBanned rejects submissions (and task requests) from a
	// worker the project's reputation engine has auto-banned. Bans are
	// sticky and survive crash recovery, so the error is not retryable.
	ErrWorkerBanned = errors.New("platform: worker is banned")
	// ErrRateLimited rejects a request that exceeded the server's
	// per-worker token-bucket rate limit. Retryable after backoff.
	ErrRateLimited = errors.New("platform: rate limit exceeded")
)

// Project is one crowdsourcing campaign: a table to fill plus its answers.
type Project struct {
	ID    string
	Table *tabular.Table
	Log   *tabular.AnswerLog

	// sys is the assignment engine; nil means fewest-answers-first with
	// random tie-breaking (the CrowdDB/Deco-style default).
	sys assign.System
	// refreshEvery controls how many submissions may elapse between
	// inference refreshes of sys.
	refreshEvery int
	// sinceRefresh counts submissions since the last enqueued refresh.
	//tcrowd:guardedby Platform.mu
	sinceRefresh int
	// fsyncPolicy is the project's durability override ("always",
	// "interval", "never"; empty = platform default). Immutable after
	// creation; recorded in the WAL create record so recovery reopens
	// the log under the same policy.
	fsyncPolicy string
	// rep is the project's worker-reputation engine (nil = defense off).
	// Observations fold in under p.mu on the submission path; the engine
	// has its own lock for the read paths (task gating, /workers).
	rep *reputation.Engine
	// polishFrac is the polish-cadence knob: the fraction of streaming
	// refreshes that run a full EM polish (0 or 1 = every refresh).
	// Immutable after creation; polishAcc is the running cadence
	// accumulator, touched only by refreshProject (serialised on the
	// project's home shard under inferMu).
	polishFrac float64
	//tcrowd:guardedby inferMu
	polishAcc float64
	rng       *rand.Rand
	// labelIdx[j] maps a categorical column's label strings to their
	// indices (nil for continuous columns). Built once at project
	// creation and immutable afterwards, so the HTTP layer resolves
	// labels in O(1) without the platform lock.
	labelIdx []map[string]int
	// assignMu serialises the assignment engine: its refresh runs on the
	// project's shard worker (off the request goroutine and off the
	// platform lock), while Select runs on request goroutines.
	assignMu sync.Mutex
	// shadow is the serving-side answer log shared by the inference model
	// and the assignment engine: refresh jobs grow it in place from the
	// main log's delta, preserving the pointer identity both engines'
	// streaming-ingest tiers key on (each keeps its own consumed cursor
	// into it). Growth happens only on the project's home shard worker
	// (which serialises the two refresh kinds) and under assignMu
	// (concurrent RequestTasks iterate the log while holding it).
	//tcrowd:guardedby assignMu
	shadow *tabular.AnswerLog
	// shadowAt is the main-log length absorbed into shadow.
	//tcrowd:guardedby assignMu
	shadowAt int
	// assignAt is the main-log length the assignment engine has refreshed
	// against (<= shadowAt when an inference refresh grew the shadow
	// more recently). Guarded by assignMu.
	assignAt int
	// inferMu serialises truth inference per project: the cached model is
	// refreshed incrementally in place, so exactly one RunInference may
	// touch it at a time (the platform lock stays free meanwhile, so
	// submissions never wait on EM).
	inferMu sync.Mutex
	// lastModel caches the latest truth-inference fit; after the first
	// cold fit, refreshes stream the answer delta into it
	// (core.Ingest + RefreshIncremental) instead of re-decoding the log.
	// logAtModel is the log length the model has absorbed.
	//tcrowd:guardedby inferMu
	lastModel *core.Model
	//tcrowd:guardedby inferMu
	logAtModel int
	// snapshot is the copy-on-publish estimate snapshot: every completed
	// refresh builds a fresh immutable InferenceResult and swaps the
	// pointer, so readers (Snapshot, the merged /estimates endpoint)
	// never block on EM and never observe a half-updated result.
	snapshot atomic.Pointer[InferenceResult]
	// genMu guards the retained-generation ring and the last publish
	// event. Publishes are already serialised (shard worker + inferMu);
	// the mutex exists for the concurrent readers (SnapshotAt,
	// LatestEvent).
	genMu sync.RWMutex
	// retained holds the most recent published results, oldest first
	// (including the latest), so generation-pinned paged walks and
	// ?generation= re-reads survive a bounded number of publishes.
	//tcrowd:guardedby genMu
	retained []*InferenceResult
	// lastEvent is the watch event of the latest publish, replayed to
	// watchers that connect (or long-poll) with a stale ?after=.
	//tcrowd:guardedby genMu
	lastEvent api.WatchEvent
	// hub fans published generation bumps out to watchers.
	hub *watchHub
	// wal is the project's durable write-ahead log (nil when the platform
	// runs without durability). Appends are serialised under the platform
	// mutex so WAL order is exactly in-memory log order.
	wal *wal.Log
	// follower marks a replica-mode project: its published generations
	// arrive from the project's home node via ApplyReplicatedGeneration,
	// the whole pinned-read surface serves them locally, and every write
	// path rejects with a NotHomeError carrying homeAddr. Set at replica
	// creation or DemoteToReplica.
	//tcrowd:guardedby Platform.mu
	follower bool
	//tcrowd:guardedby Platform.mu
	homeAddr string
	// replicaAnswers/replicaWorkers mirror the newest replicated
	// generation's AnswersSeen and worker count — the follower's stand-in
	// for its (empty or lagging) local answer log in Stats and freshness
	// checks.
	//tcrowd:guardedby Platform.mu
	replicaAnswers int
	//tcrowd:guardedby Platform.mu
	replicaWorkers int
}

// Platform hosts projects and is safe for concurrent use.
type Platform struct {
	mu sync.Mutex
	//tcrowd:guardedby mu
	projects map[string]*Project
	seed     int64
	// retain is the per-project retained-generation ring capacity.
	retain int
	// retainBytes optionally caps the retained ring by estimated result
	// bytes (0 = count-only): after each publish the oldest generations
	// are evicted until the ring's estimated footprint fits. The latest
	// generation is always retained whatever its size.
	retainBytes int64
	// pubHook, when set, observes every snapshot publish on home (non-
	// follower) projects — the cluster layer's replication tap. Stored
	// behind an atomic pointer so publishes (shard workers) never race
	// SetPublishHook.
	pubHook atomic.Pointer[PublishHook]
	// sched partitions per-project refresh work across shard workers; all
	// model mutation funnels through it (see the package comment).
	sched *shard.Scheduler
	// walOpts enables the durable write-ahead log when non-nil.
	walOpts *WALOptions
	// closeOnce makes Close idempotent; closeErr remembers its outcome.
	closeOnce sync.Once
	closeErr  error
}

// Options configures the platform's serving layer. The zero value gives
// the shard scheduler's defaults (GOMAXPROCS-derived worker count, queue
// depth 64) and an 8-generation retention ring.
type Options struct {
	// Workers is the number of inference shard workers.
	Workers int
	// QueueDepth bounds each shard's pending refresh queue; a full queue
	// sheds refresh work with shard.ErrShardSaturated.
	QueueDepth int
	// RetainGenerations is how many published snapshot generations each
	// project keeps addressable (SnapshotAt, generation-pinned cursors)
	// after they stop being the latest. Default 8; the latest generation
	// is always retained.
	RetainGenerations int
	// RetainBytes additionally caps each project's retained ring by
	// estimated in-memory bytes (estimate cells plus worker-quality
	// entries): generations are evicted oldest-first once the ring's
	// footprint exceeds the cap, whatever RetainGenerations allows. 0
	// disables the byte cap. The latest generation is always retained.
	RetainBytes int64
	// WAL enables the durable write-ahead log: answers are persisted
	// before acknowledgement and the platform recovers them at boot (see
	// Recover). Nil keeps the platform purely in-memory.
	WAL *WALOptions
}

// New returns an empty platform with default serving options; seed drives
// assignment tie-breaking.
func New(seed int64) *Platform { return NewWithOptions(seed, Options{}) }

// NewWithOptions returns an empty platform with an explicitly sized shard
// scheduler.
func NewWithOptions(seed int64, opts Options) *Platform {
	if opts.RetainGenerations <= 0 {
		opts.RetainGenerations = 8
	}
	return &Platform{
		projects:    make(map[string]*Project),
		seed:        seed,
		retain:      opts.RetainGenerations,
		retainBytes: opts.RetainBytes,
		walOpts:     opts.WAL,
		sched: shard.New(shard.Options{
			Workers:    opts.Workers,
			QueueDepth: opts.QueueDepth,
		}),
	}
}

// Close drains the shard scheduler: queued refreshes run to completion and
// the workers exit. Submissions and strongly consistent reads after Close
// fail with shard.ErrClosed; snapshot reads keep working. Watch channels
// close after the drain, so watchers observe every generation published by
// the draining refreshes before their stream ends.
//
// After the drain — so in-flight compactions have finished — every
// project's WAL is flushed, fsynced and closed regardless of the fsync
// policy: a clean shutdown never loses recorded answers even under
// fsync=never. The returned error reports the first WAL flush failure.
// Close is idempotent; repeat calls return the first call's outcome.
func (p *Platform) Close() error {
	p.closeOnce.Do(func() {
		p.sched.Close()
		p.mu.Lock()
		projs := make([]*Project, 0, len(p.projects))
		for _, proj := range p.projects {
			projs = append(projs, proj)
		}
		p.mu.Unlock()
		for _, proj := range projs {
			if proj.wal != nil {
				if err := proj.wal.Close(); err != nil && p.closeErr == nil {
					p.closeErr = fmt.Errorf("platform: close wal for %s: %w", proj.ID, err)
				}
			}
			proj.hub.close()
		}
	})
	return p.closeErr
}

// ShardMetrics snapshots the scheduler's per-shard counters (queue depth,
// coalesced/rejected/completed jobs, refresh latency) for the /stats
// endpoint and operational monitoring.
func (p *Platform) ShardMetrics() []shard.Metrics { return p.sched.Metrics() }

// NumShardWorkers returns the inference worker count.
func (p *Platform) NumShardWorkers() int { return p.sched.NumShards() }

// ProjectConfig configures CreateProject.
type ProjectConfig struct {
	// Rows is the number of entities to collect.
	Rows int
	// Entities optionally names the rows (len must equal Rows if set).
	Entities []string
	// UseTCrowdAssignment enables the structure-aware T-Crowd assignment
	// engine; otherwise tasks are served fewest-answers-first.
	UseTCrowdAssignment bool
	// RefreshEvery bounds submissions between inference refreshes: both
	// the assignment engine's refresh (on the next task request) and the
	// asynchronous estimate-snapshot refresh Submit enqueues (default 25;
	// use 1 for a refresh per answer).
	RefreshEvery int
	// FsyncPolicy overrides the platform-wide WAL fsync policy for this
	// project: "always", "interval" or "never" (empty = platform
	// default). A hot campaign can demand fsync-per-batch while a bulk
	// import scratch project skips fsyncs entirely, on the same
	// platform. Ignored when durability is disabled.
	FsyncPolicy string
	// PolishFrac is the polish-cadence knob: the fraction of streaming
	// inference refreshes that re-converge the model with a full EM
	// polish; the rest run only the cheap dirty-cell pass (deferred
	// polish). 0 and 1 both mean "polish every refresh"; values outside
	// [0, 1] are rejected. Recorded in the WAL create record like
	// FsyncPolicy, so recovery keeps the cadence.
	PolishFrac float64
	// Reputation enables the online worker-reputation engine: streaming
	// trust scores per worker with graduated responses — E-step
	// down-weighting, assignment quarantine, and a sticky auto-ban that
	// rejects further submissions with ErrWorkerBanned. Reputation
	// verdicts ride the WAL, so bans survive crash recovery.
	Reputation bool
}

// CreateProject registers a new campaign. With durability enabled the
// registration is logged (and fsynced, whatever the policy) before the
// call returns: a created project survives any crash.
func (p *Platform) CreateProject(id string, schema tabular.Schema, cfg ProjectConfig) (*Project, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	proj, err := p.createProjectLocked(id, schema, cfg)
	if err != nil {
		return nil, err
	}
	if p.walOpts != nil {
		if err := p.attachProjectWAL(proj); err != nil {
			delete(p.projects, id)
			return nil, err
		}
	}
	return proj, nil
}

// attachProjectWAL opens the project's log directory, refuses one that
// already holds records (an unrecovered or foreign log — creating over
// it would fork history), and makes the registration durable. Caller
// holds p.mu.
func (p *Platform) attachProjectWAL(proj *Project) error {
	l, replay, err := p.walOpts.openProjectWAL(proj.ID, proj.fsyncPolicy)
	if err != nil {
		return fmt.Errorf("%w: open wal for %q: %v", ErrDurability, proj.ID, err)
	}
	if len(replay.Records) > 0 {
		_ = l.Close()
		return fmt.Errorf("%w: wal directory for %q already holds records (recover or remove it)", ErrDuplicateID, proj.ID)
	}
	if err := appendCreateRecord(l, walCreateInfo(proj)); err != nil {
		_ = l.Close()
		_ = p.walOpts.fs().RemoveAll(p.walOpts.projDir(proj.ID))
		return fmt.Errorf("%w: log create of %q: %v", ErrDurability, proj.ID, err)
	}
	proj.wal = l
	return nil
}

// createProjectLocked validates and registers a project in memory.
// Caller holds p.mu; WAL attachment is the caller's concern (CreateProject
// logs a create record, recovery re-attaches the replayed log).
func (p *Platform) createProjectLocked(id string, schema tabular.Schema, cfg ProjectConfig) (*Project, error) {
	// Project IDs feed the shard scheduler's coalescing keys, which
	// namespace job kinds with a control-character suffix — a crafted ID
	// containing control characters could collide with another project's
	// job key (and would be miserable in URLs and logs anyway).
	for _, r := range id {
		if r < 0x20 || r == 0x7f {
			return nil, fmt.Errorf("platform: project id contains control character %q", r)
		}
	}
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	if cfg.Rows <= 0 {
		return nil, fmt.Errorf("platform: project %q needs at least one row", id)
	}
	if cfg.Entities != nil && len(cfg.Entities) != cfg.Rows {
		return nil, fmt.Errorf("platform: %d entities for %d rows", len(cfg.Entities), cfg.Rows)
	}
	if cfg.FsyncPolicy != "" {
		if _, err := wal.ParseSyncPolicy(cfg.FsyncPolicy); err != nil {
			return nil, fmt.Errorf("platform: project %q: %w", id, err)
		}
	}
	if cfg.PolishFrac < 0 || cfg.PolishFrac > 1 {
		return nil, fmt.Errorf("platform: project %q: polish_frac %v outside [0, 1]", id, cfg.PolishFrac)
	}
	if _, dup := p.projects[id]; dup {
		return nil, ErrDuplicateID
	}
	tbl := tabular.NewTable(schema, cfg.Rows)
	if cfg.Entities != nil {
		tbl.Entities = append([]string(nil), cfg.Entities...)
	}
	proj := &Project{
		ID:           id,
		Table:        tbl,
		Log:          tabular.NewAnswerLog(),
		refreshEvery: cfg.RefreshEvery,
		fsyncPolicy:  cfg.FsyncPolicy,
		polishFrac:   cfg.PolishFrac,
		rng:          stats.NewRNG(p.seed + int64(len(p.projects))),
		labelIdx:     buildLabelIndex(schema),
		hub:          newWatchHub(),
		// Full-capacity ring up front: publishes never grow it, so the
		// copy-on-publish path stays allocation-free after the result
		// itself.
		retained: make([]*InferenceResult, 0, p.retain),
	}
	if proj.refreshEvery <= 0 {
		proj.refreshEvery = 25
	}
	if cfg.Reputation {
		proj.rep = reputation.NewEngine(reputation.Config{})
	}
	if cfg.UseTCrowdAssignment {
		sys := assign.NewTCrowdSystem(p.seed)
		if proj.rep != nil {
			// Quarantined and banned workers never receive tasks from the
			// structure-aware selector (the fallback path checks too).
			sys.SetWorkerGate(proj.rep.Assignable)
		}
		proj.sys = sys
	}
	p.projects[id] = proj
	return proj, nil
}

// buildLabelIndex precomputes per-column label→index maps so answer
// validation resolves labels in O(1) instead of scanning the label slice
// per submission.
func buildLabelIndex(schema tabular.Schema) []map[string]int {
	out := make([]map[string]int, len(schema.Columns))
	for j, col := range schema.Columns {
		if col.Type != tabular.Categorical {
			continue
		}
		m := make(map[string]int, len(col.Labels))
		for k, lbl := range col.Labels {
			m[lbl] = k
		}
		out[j] = m
	}
	return out
}

// LabelIndex resolves a label string in column j's domain via the map
// precomputed at project creation. It is safe without the platform lock
// (the schema is immutable after creation).
func (proj *Project) LabelIndex(j int, label string) (int, bool) {
	if j < 0 || j >= len(proj.labelIdx) || proj.labelIdx[j] == nil {
		return 0, false
	}
	idx, ok := proj.labelIdx[j][label]
	return idx, ok
}

// Project returns a registered project.
func (p *Platform) Project(id string) (*Project, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	proj, ok := p.projects[id]
	if !ok {
		return nil, ErrNoProject
	}
	return proj, nil
}

// ProjectIDs lists projects sorted by id.
func (p *Platform) ProjectIDs() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.projects))
	for id := range p.projects {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Task is what a worker receives: the cell plus everything needed to
// render the question.
type Task struct {
	Row    int      `json:"row"`
	Entity string   `json:"entity"`
	Column string   `json:"column"`
	Type   string   `json:"type"`
	Labels []string `json:"labels,omitempty"`
}

// assignJobSuffix distinguishes assignment-refresh jobs from estimate-
// refresh jobs in the shard scheduler's coalescing map. The route key
// stays the bare project ID, so both kinds run on the project's home
// shard; the job key differs, so they never coalesce into each other.
const assignJobSuffix = "\x00assign"

// assignRefreshWait bounds how long a task request waits for its
// assignment refresh to complete on the shard worker. An idle shard
// finishes well within it (strong freshness is the common case); on a
// busy shard — queued work from co-sharded projects, a long cold fit —
// the request stops waiting and serves from the engine's previous state
// while the refresh completes in the background. Without the bound a
// request could stall behind minutes of queued refreshes that
// backpressure (which only trips on a FULL queue) never sheds.
const assignRefreshWait = 2 * time.Second

// RequestTasks assigns up to k cells to worker u (the external-HIT hook):
// via the project's T-Crowd engine when enabled, otherwise
// fewest-answers-first with random tie-breaking.
//
// When the project's assignment engine is due a refresh (its RefreshEvery
// cadence, or the very first request), the refresh runs on the project's
// shard worker — never on the request goroutine under the platform lock —
// with the same coalescing semantics as estimate refreshes, so a slow
// assign refresh cannot stall concurrent submissions or other projects'
// task requests. The request waits for its refresh at most
// assignRefreshWait; past that — and under shard backpressure (saturated
// queue, shutdown), where the refresh is shed outright — tasks are served
// from the engine's previous state: assignment quality degrades
// gracefully instead of the request hanging or failing.
func (p *Platform) RequestTasks(projectID string, u tabular.WorkerID, k int) ([]Task, error) {
	p.mu.Lock()
	proj, ok := p.projects[projectID]
	if !ok {
		p.mu.Unlock()
		return nil, ErrNoProject
	}
	if proj.follower {
		home := proj.homeAddr
		p.mu.Unlock()
		return nil, &NotHomeError{Project: projectID, Home: home}
	}
	if proj.rep != nil && !proj.rep.Assignable(u) {
		p.mu.Unlock()
		if proj.rep.State(u) == reputation.Banned {
			return nil, fmt.Errorf("%w: %s", ErrWorkerBanned, u)
		}
		// Quarantined: no tasks (from any selector, fallback included),
		// but not an error — the worker may still redeem themselves on
		// answers already held.
		return []Task{}, nil
	}
	needRefresh := proj.sys != nil && proj.sinceRefresh == 0 // covers the very first request
	logLen := proj.Log.Len()
	p.mu.Unlock()

	// Skip the shard round trip when the engine has already absorbed the
	// whole log: idle projects polled for tasks would otherwise enqueue a
	// no-op refresh per poll (and wait behind whatever the shard queue
	// holds), consuming queue depth for nothing.
	if needRefresh && proj.assignUpToDate(logLen) {
		needRefresh = false
	}
	if needRefresh {
		done, err := p.sched.SubmitNotifyKeyed(projectID, projectID+assignJobSuffix,
			func() error { return p.refreshAssign(proj) })
		switch {
		case errors.Is(err, shard.ErrShardSaturated), errors.Is(err, shard.ErrClosed):
			// Refresh shed: serve from the previous assignment state.
		case err != nil:
			return nil, err
		default:
			t := time.NewTimer(assignRefreshWait)
			select {
			case err := <-done:
				t.Stop()
				if err != nil {
					return nil, err
				}
			case <-t.C:
				// Refresh still queued or running: serve stale; the job
				// completes in the background and freshens later requests.
			}
		}
	}

	// Lock order: assignMu before mu, matching refreshAssign. TryLock
	// keeps the request bounded: when this project's own refresh is still
	// mid-flight (it holds assignMu while EM runs), don't block behind it
	// — degrade to fewest-answers-first for this request.
	useSys := proj.sys != nil && proj.assignMu.TryLock()
	if useSys {
		defer proj.assignMu.Unlock()
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if k <= 0 {
		k = proj.Table.NumCols()
	}
	var cells []tabular.Cell
	if useSys {
		cells = proj.sys.Select(u, k, proj.Log)
	}
	if len(cells) == 0 {
		cells = proj.fewestAnswersFirst(u, k)
	}
	out := make([]Task, len(cells))
	for i, c := range cells {
		col := proj.Table.Schema.Columns[c.Col]
		out[i] = Task{
			Row:    c.Row,
			Entity: proj.Table.Entities[c.Row],
			Column: col.Name,
			Type:   col.Type.String(),
			Labels: col.Labels,
		}
	}
	return out, nil
}

// fewestAnswersFirst returns up to k cells unanswered by u, preferring
// cells with the fewest collected answers.
func (proj *Project) fewestAnswersFirst(u tabular.WorkerID, k int) []tabular.Cell {
	type cand struct {
		c tabular.Cell
		n int
		r float64
	}
	var cands []cand
	answered := map[tabular.Cell]bool{}
	for _, a := range proj.Log.ByWorker(u) {
		answered[a.Cell] = true
	}
	for i := 0; i < proj.Table.NumRows(); i++ {
		for j := 0; j < proj.Table.NumCols(); j++ {
			c := tabular.Cell{Row: i, Col: j}
			if answered[c] {
				continue
			}
			cands = append(cands, cand{c: c, n: proj.Log.CountByCell(c), r: proj.rng.Float64()})
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].n != cands[b].n {
			return cands[a].n < cands[b].n
		}
		return cands[a].r < cands[b].r
	})
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]tabular.Cell, k)
	for i := 0; i < k; i++ {
		out[i] = cands[i].c
	}
	return out
}

// RefreshState reports what a submission did to the project's inference
// refresh pipeline (mirrored on the wire by api.Refresh*).
type RefreshState string

// Refresh states returned by SubmitBatch. The values are defined by the
// wire contract (api.Refresh*) so the two cannot drift.
const (
	// RefreshEnqueued: a refresh was enqueued (or coalesced) on the
	// project's shard.
	RefreshEnqueued RefreshState = api.RefreshEnqueued
	// RefreshNone: mid-cadence, no refresh was due.
	RefreshNone RefreshState = api.RefreshNone
	// RefreshDeferred: the due refresh was shed by a saturated shard
	// queue; the answers are recorded regardless.
	RefreshDeferred RefreshState = api.RefreshDeferred
	// RefreshShutdown: the scheduler is closed; answers recorded, no
	// refresh will run.
	RefreshShutdown RefreshState = api.RefreshShutdown
)

// BatchItemError locates one invalid answer inside a rejected batch.
type BatchItemError struct {
	// Index is the answer's position in the submitted slice.
	Index int
	// Err is the per-answer validation error (ErrAlreadyAnswered, unknown
	// column, ...).
	Err error
}

// BatchError reports why SubmitBatch rejected a batch. Batches are atomic:
// when a BatchError is returned, nothing was recorded.
type BatchError struct {
	Items []BatchItemError
}

// Error implements the error interface.
func (e *BatchError) Error() string {
	if len(e.Items) == 1 {
		return fmt.Sprintf("platform: batch answer %d invalid: %v", e.Items[0].Index, e.Items[0].Err)
	}
	return fmt.Sprintf("platform: %d invalid answers in batch (first: answer %d: %v)",
		len(e.Items), e.Items[0].Index, e.Items[0].Err)
}

// Unwrap exposes the per-item errors to errors.Is (a single-cause batch
// rejection matches its underlying sentinel, e.g. ErrAlreadyAnswered).
func (e *BatchError) Unwrap() []error {
	out := make([]error, len(e.Items))
	for i, it := range e.Items {
		out[i] = it.Err
	}
	return out
}

// BatchResult reports what an accepted submission recorded and did to the
// refresh pipeline.
type BatchResult struct {
	// Recorded is the number of answers appended to the log.
	Recorded int
	// Refresh is the refresh outcome.
	Refresh RefreshState
	// RefreshErr is the shard error behind RefreshDeferred/RefreshShutdown
	// (wraps shard.ErrShardSaturated or shard.ErrClosed), nil otherwise.
	RefreshErr error
}

// AnswerMeta carries optional per-answer submission metadata riding next
// to the answer on the wire (api.Answer.WorkTimeMs / .Client).
type AnswerMeta struct {
	// WorkTimeMs is the client-reported time spent on the task in
	// milliseconds (0 = not reported). Negative values fail validation.
	WorkTimeMs int64
	// Client identifies the submitting client software (diagnostics only).
	Client string
}

// validateAnswer checks one answer against the project under p.mu; seen
// holds (worker, cell) pairs earlier in the same batch.
func validateAnswer(proj *Project, a tabular.Answer, seen map[tabular.Answer]bool) error {
	j := a.Cell.Col
	if j < 0 || j >= proj.Table.NumCols() {
		return fmt.Errorf("platform: column index %d outside schema (%d columns)", j, proj.Table.NumCols())
	}
	if a.Cell.Row < 0 || a.Cell.Row >= proj.Table.NumRows() {
		return fmt.Errorf("platform: row %d outside project (%d rows)", a.Cell.Row, proj.Table.NumRows())
	}
	if err := a.Value.CheckAgainst(proj.Table.Schema.Columns[j]); err != nil {
		return err
	}
	if a.Worker == "" {
		return errors.New("platform: empty worker id")
	}
	key := tabular.Answer{Worker: a.Worker, Cell: a.Cell}
	if seen[key] || proj.Log.HasAnswered(a.Worker, a.Cell) {
		return ErrAlreadyAnswered
	}
	if seen != nil {
		seen[key] = true
	}
	return nil
}

// SubmitBatch records a batch of answers atomically: every answer is
// validated up front (schema, row range, double answers — including
// duplicates within the batch itself), and on any failure the whole batch
// is rejected with a *BatchError pinpointing the offending rows and
// NOTHING is recorded. On success all answers append to the log and at
// most ONE coalesced refresh is enqueued on the project's shard — a
// 200-answer batch costs one queued refresh, not 200 — following the
// project's refresh cadence (a refresh is due when the batch crosses a
// RefreshEvery boundary or while no snapshot has been published yet).
//
// Shard backpressure never fails an accepted batch: when the due refresh
// is shed (saturated queue or shutdown), the result carries
// RefreshDeferred/RefreshShutdown plus the shard error, and the cadence
// counter is rewound so the next submission retries the refresh.
//
// Answers address cells directly (Cell.Col is a schema column index); the
// HTTP layer resolves column names and labels via Project.LabelIndex.
func (p *Platform) SubmitBatch(projectID string, answers []tabular.Answer) (BatchResult, error) {
	return p.SubmitBatchMeta(projectID, answers, nil)
}

// SubmitBatchMeta is SubmitBatch with per-answer submission metadata:
// meta[i] annotates answers[i] (nil meta = no metadata, identical to
// SubmitBatch). On a project running the reputation engine each accepted
// answer is also folded into the submitting worker's trust score — answers
// from auto-banned workers are rejected per item with ErrWorkerBanned —
// and any state-change verdicts are appended to the WAL so bans survive
// crash recovery.
func (p *Platform) SubmitBatchMeta(projectID string, answers []tabular.Answer, meta []AnswerMeta) (BatchResult, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	proj, ok := p.projects[projectID]
	if !ok {
		return BatchResult{}, ErrNoProject
	}
	if proj.follower {
		return BatchResult{}, &NotHomeError{Project: projectID, Home: proj.homeAddr}
	}
	if len(answers) == 0 {
		return BatchResult{}, errors.New("platform: empty answer batch")
	}
	if meta != nil && len(meta) != len(answers) {
		return BatchResult{}, fmt.Errorf("platform: %d metadata entries for %d answers", len(meta), len(answers))
	}
	seen := make(map[tabular.Answer]bool, len(answers))
	var bad []BatchItemError
	for i, a := range answers {
		err := validateAnswer(proj, a, seen)
		if err == nil && meta != nil && meta[i].WorkTimeMs < 0 {
			err = fmt.Errorf("platform: negative work_time_ms %d", meta[i].WorkTimeMs)
		}
		if err == nil && proj.rep != nil && proj.rep.State(a.Worker) == reputation.Banned {
			err = fmt.Errorf("%w: %s", ErrWorkerBanned, a.Worker)
		}
		if err != nil {
			bad = append(bad, BatchItemError{Index: i, Err: err})
		}
	}
	if len(bad) > 0 {
		return BatchResult{}, &BatchError{Items: bad}
	}
	// Durability before acknowledgement: the whole batch is one framed
	// WAL record (one append + one fsync however large the batch, so
	// batch amortisation survives fsync=always), written under p.mu so
	// WAL order is exactly in-memory log order — replay reproduces the
	// log bit for bit. WAL-first makes the protocol at-least-once: a
	// crash between the fsync and the ack leaves the batch durable, and
	// the client's retry is rejected as already answered.
	var rotated bool
	if proj.wal != nil {
		blob, err := tabular.MarshalAnswers(proj.Table.Schema, answers)
		if err != nil {
			return BatchResult{}, err
		}
		rotated, err = proj.wal.Append(wal.Record{Type: walRecBatch, Data: blob})
		if err != nil {
			return BatchResult{}, fmt.Errorf("%w: %v", ErrDurability, err)
		}
	}
	for _, a := range answers {
		proj.Log.Add(a)
	}
	if proj.rep != nil {
		// Fold the accepted answers into the reputation engine — a pure
		// left fold over the answer stream, so any batching of the same
		// stream yields the same verdict sequence. Verdicts (state
		// changes) are made durable as a WAL reputation record carrying
		// the transitioning workers' full snapshots; a failure here is
		// non-fatal (the answers are already durable, and a lost verdict
		// is re-earned from the next few answers after recovery).
		var changed []tabular.WorkerID
		for i, a := range answers {
			var ms int64
			if meta != nil {
				ms = meta[i].WorkTimeMs
			}
			if v, ok := proj.rep.Observe(reputation.Observation{Answer: a, WorkTimeMs: ms}); ok {
				changed = append(changed, v.Worker)
			}
		}
		if len(changed) > 0 && proj.wal != nil {
			if rot, err := appendReputationRecord(proj, changed); err == nil && rot {
				rotated = true
			}
		}
	}
	if rotated {
		// The append sealed a segment: fold the history into a checkpoint
		// on the project's home shard (own job key; never coalesces into
		// refreshes, best-effort — the next rotation retries a shed job).
		p.scheduleCompaction(projectID, proj)
	}
	res := BatchResult{Recorded: len(answers), Refresh: RefreshNone}
	proj.sinceRefresh += len(answers)
	crossed := proj.sinceRefresh >= proj.refreshEvery
	if crossed {
		proj.sinceRefresh = 0
	}
	if crossed || proj.snapshot.Load() == nil {
		if err := p.sched.Submit(projectID, func() error { return p.refreshProject(proj) }); err != nil {
			// The cadence slot was consumed but no refresh landed: rewind
			// the counter so the very next submission retries, keeping the
			// documented staleness bound instead of waiting out another
			// full RefreshEvery window (or forever, if traffic stops).
			proj.sinceRefresh = proj.refreshEvery - 1
			res.RefreshErr = err
			res.Refresh = RefreshDeferred
			if errors.Is(err, shard.ErrClosed) {
				res.Refresh = RefreshShutdown
			}
		} else {
			res.Refresh = RefreshEnqueued
		}
	}
	return res, nil
}

// Submit records worker u's answer for (row, column). Values are validated
// against the schema, and double answers by the same worker are rejected.
//
// Accepted answers also keep the published estimate snapshot warm: an
// asynchronous refresh is enqueued on the project's shard on the project's
// refresh cadence — immediately while no snapshot exists yet, then every
// RefreshEvery-th submission (coalesced: a burst of submissions costs one
// queued refresh). Cadence gating keeps write-only projects from running
// EM per answer; published snapshots lag the log by at most RefreshEvery
// answers plus the in-flight refresh, and strongly consistent reads
// (RunInference) always see everything.
//
// When the shard queue is saturated, the ANSWER IS STILL RECORDED — only
// the refresh is shed — and Submit returns an error wrapping
// shard.ErrShardSaturated so callers can apply backpressure (the legacy
// HTTP route maps it to 429; /v1 reports it in-body instead). The same
// applies to shard.ErrClosed during shutdown. SubmitBatch is the
// batch-oriented equivalent.
func (p *Platform) Submit(projectID string, u tabular.WorkerID, row int, column string, value tabular.Value) error {
	p.mu.Lock()
	proj, ok := p.projects[projectID]
	p.mu.Unlock()
	if !ok {
		return ErrNoProject
	}
	j := proj.Table.Schema.ColumnIndex(column)
	if j < 0 {
		return fmt.Errorf("platform: unknown column %q", column)
	}
	a := tabular.Answer{Worker: u, Cell: tabular.Cell{Row: row, Col: j}, Value: value}
	res, err := p.SubmitBatch(projectID, []tabular.Answer{a})
	if err != nil {
		var be *BatchError
		if errors.As(err, &be) {
			return be.Items[0].Err
		}
		return err
	}
	if res.RefreshErr != nil {
		return fmt.Errorf("platform: answer recorded, refresh shed: %w", res.RefreshErr)
	}
	return nil
}

// InferenceResult is the requester-facing output: estimates plus worker
// qualities. Results are immutable once published — refreshes build a new
// one and swap the project's snapshot pointer (copy-on-publish). Every
// publish gets the next Generation and enters the project's retained ring,
// so generation-pinned reads (SnapshotAt, paged cursor walks) address a
// bounded window of past states.
type InferenceResult struct {
	Estimates metrics.Estimates
	// WorkerQuality maps workers to their unified quality q_u.
	WorkerQuality map[tabular.WorkerID]float64
	// Iterations and Converged report EM behaviour.
	Iterations int
	Converged  bool
	// Generation numbers this publish (1 is the project's first; strictly
	// increasing — a refresh that absorbs nothing republishes nothing).
	Generation int
	// AnswersSeen is the number of log answers these estimates reflect
	// (compare with Stats.Answers for staleness).
	AnswersSeen int
	// memSize is the result's estimated in-memory footprint, computed once
	// at install time and consulted by the retained ring's byte-cap
	// eviction (Options.RetainBytes). Immutable after install.
	memSize int64
}

// estimateMemSize approximates the result's resident footprint: 24 bytes
// per estimate cell (tabular.Value: kind + int + float64) and the map
// entry cost per worker (hash bucket share + key header/bytes + float64).
// An estimate is all the byte cap needs — it only has to rank generations
// of the SAME project against each other consistently.
func (r *InferenceResult) estimateMemSize() int64 {
	var n int64
	for _, row := range r.Estimates {
		n += int64(len(row)) * 24
	}
	for u := range r.WorkerQuality {
		n += int64(len(u)) + 56
	}
	return n
}

// RunInference runs T-Crowd truth inference over the project's answers and
// returns estimates reflecting every answer recorded before the call — the
// strongly consistent read. It routes through the project's shard queue
// (waiting its turn behind, or coalescing into, queued refreshes), so all
// model mutation stays on the project's home shard worker. It fails with an
// error wrapping shard.ErrShardSaturated when the shard queue is full.
//
// The first refresh pays a cold fit (on a log snapshot, so submissions
// continue meanwhile); every later one streams only the answers submitted
// since the previous refresh into the cached model (core.Ingest) and
// re-converges it with an incremental polish — refresh cost scales with the
// submission delta, not the log. With no new answers the published
// snapshot is served as is. For a read that never blocks on EM, use
// Snapshot.
func (p *Platform) RunInference(projectID string) (*InferenceResult, error) {
	p.mu.Lock()
	proj, ok := p.projects[projectID]
	if !ok {
		p.mu.Unlock()
		return nil, ErrNoProject
	}
	if proj.follower {
		// A strongly consistent read needs the home node's log; the
		// replica can only serve what has been shipped to it.
		home := proj.homeAddr
		p.mu.Unlock()
		return nil, &NotHomeError{Project: projectID, Home: home}
	}
	p.mu.Unlock()
	if err := p.sched.SubmitWait(projectID, func() error { return p.refreshProject(proj) }); err != nil {
		return nil, err
	}
	res := proj.snapshot.Load()
	if res == nil {
		// Unreachable: a successful refresh always publishes.
		return nil, ErrNoSnapshot
	}
	return res, nil
}

// Snapshot returns the project's last published estimates without ever
// blocking on inference: it is a single atomic pointer read, safe to call
// at any rate from any goroutine. The result may lag the answer log by the
// refreshes still queued (compare AnswersSeen with Stats.Answers); before
// the first completed refresh it fails with ErrNoSnapshot.
func (p *Platform) Snapshot(projectID string) (*InferenceResult, error) {
	p.mu.Lock()
	proj, ok := p.projects[projectID]
	p.mu.Unlock()
	if !ok {
		return nil, ErrNoProject
	}
	res := proj.snapshot.Load()
	if res == nil {
		return nil, ErrNoSnapshot
	}
	return res, nil
}

// SnapshotAt returns the published result for one specific generation from
// the project's retained ring — the lookup behind ?generation= re-reads
// and generation-pinned cursor walks. It fails with ErrNoSnapshot when the
// generation has not been published yet (retryable: it may appear) and
// with ErrGenerationGone when it has been evicted (the caller must restart
// from the latest generation).
func (p *Platform) SnapshotAt(projectID string, generation int) (*InferenceResult, error) {
	p.mu.Lock()
	proj, ok := p.projects[projectID]
	follower := ok && proj.follower
	p.mu.Unlock()
	if !ok {
		return nil, ErrNoProject
	}
	latest := proj.snapshot.Load()
	if latest == nil {
		if follower {
			return nil, fmt.Errorf("%w (no generation replicated yet)", ErrReplicaStale)
		}
		return nil, ErrNoSnapshot
	}
	if generation == latest.Generation {
		return latest, nil
	}
	if generation > latest.Generation {
		if follower {
			// On a replica a future generation is a replication-lag
			// condition, not "never published": the home node has (or soon
			// will have) it, and the stream will deliver it here. 503 +
			// retryable tells the pinned reader to back off briefly.
			return nil, fmt.Errorf("%w (generation %d not replicated yet, replica has %d)",
				ErrReplicaStale, generation, latest.Generation)
		}
		return nil, fmt.Errorf("%w (generation %d not yet published, latest is %d)",
			ErrNoSnapshot, generation, latest.Generation)
	}
	proj.genMu.RLock()
	defer proj.genMu.RUnlock()
	for _, r := range proj.retained {
		if r.Generation == generation {
			return r, nil
		}
	}
	return nil, fmt.Errorf("%w (generation %d, retained window starts at %d)",
		ErrGenerationGone, generation, proj.retained[0].Generation)
}

// LatestEvent returns the watch event of the project's most recent publish
// (ok false before the first publish) — the catch-up payload served to
// watchers whose ?after= lags the latest generation.
func (p *Platform) LatestEvent(projectID string) (api.WatchEvent, bool, error) {
	p.mu.Lock()
	proj, ok := p.projects[projectID]
	p.mu.Unlock()
	if !ok {
		return api.WatchEvent{}, false, ErrNoProject
	}
	proj.genMu.RLock()
	defer proj.genMu.RUnlock()
	return proj.lastEvent, proj.lastEvent.Generation > 0, nil
}

// Watch subscribes to the project's generation bumps: every snapshot
// publish delivers one api.WatchEvent on the returned watcher's channel.
// Buffers are bounded — a consumer that falls more than watchBuffer events
// behind gets the oldest pending bumps dropped instead of stalling the
// publisher or growing without bound, observable as a gap in the strictly
// increasing Generation sequence (the HTTP watch handlers translate gaps
// into the wire-level Coalesced flag). Close the watcher when done; the
// channel also closes when the platform shuts down (after the final
// drain, so no published generation goes unannounced).
func (p *Platform) Watch(projectID string) (*Watcher, error) {
	p.mu.Lock()
	proj, ok := p.projects[projectID]
	p.mu.Unlock()
	if !ok {
		return nil, ErrNoProject
	}
	return proj.hub.subscribe(), nil
}

// assignUpToDate reports whether the assignment engine has refreshed at
// least once and absorbed the first logLen answers. TryLock: when a
// refresh is mid-flight the state is in motion — report stale and let the
// caller's enqueue coalesce into the queued work.
func (proj *Project) assignUpToDate(logLen int) bool {
	if !proj.assignMu.TryLock() {
		return false
	}
	defer proj.assignMu.Unlock()
	return proj.shadow != nil && proj.assignAt == logLen
}

// growShadow appends the main log's unabsorbed delta to the project's
// shared shadow log and returns the table. Callers must hold the
// project's assignMu (the machine-readable contract below — the prose
// alone was ambiguous, since assignMu lives on proj, not the receiver)
// and run on the project's home shard worker; the platform lock is taken
// only to copy the delta.
//
//tcrowd:locked Project.assignMu
func (p *Platform) growShadow(proj *Project) *tabular.Table {
	p.mu.Lock()
	tbl := proj.Table
	total := proj.Log.Len()
	var batch []tabular.Answer
	if total > proj.shadowAt {
		batch = append([]tabular.Answer(nil), proj.Log.All()[proj.shadowAt:total]...)
	}
	p.mu.Unlock()

	if proj.shadow == nil {
		proj.shadow = tabular.NewAnswerLog()
	}
	proj.shadow.AddAll(batch)
	proj.shadowAt = total
	return tbl
}

// refreshAssign brings the project's assignment engine up to date with the
// answer log. It runs on the project's shard worker (submitted by
// RequestTasks under the assign job key) — never on a request goroutine,
// and never under the platform lock, which it takes only to copy the
// submission delta. The engine refreshes against the project's shared
// shadow log grown in place from that delta, so the streaming-ingest tier
// (which keys on source-log pointer identity) stays hot: refresh cost is
// O(batch since last refresh), not O(log).
func (p *Platform) refreshAssign(proj *Project) error {
	proj.assignMu.Lock()
	defer proj.assignMu.Unlock()

	tbl := p.growShadow(proj)
	proj.assignAt = proj.shadowAt
	return proj.sys.Refresh(tbl, proj.shadow)
}

// refreshProject brings the project's cached model up to date with its
// answer log and publishes a fresh estimate snapshot. It runs on the
// project's shard worker; inferMu additionally serialises it against any
// direct callers so the in-place model mutation is never concurrent.
func (p *Platform) refreshProject(proj *Project) error {
	p.mu.Lock()
	follower := proj.follower
	p.mu.Unlock()
	if follower {
		// A refresh enqueued before a DemoteToReplica may still drain
		// through the shard; a follower never publishes locally (its
		// generations arrive from the home node), so skip quietly.
		return nil
	}
	proj.inferMu.Lock()
	defer proj.inferMu.Unlock()

	// Grow the shared shadow log (under assignMu: concurrent RequestTasks
	// iterate it). The reads below run lock-free: both refresh kinds are
	// serialised on the project's home shard worker, so nothing else grows
	// the shadow while this job runs, and project logs are append-only
	// with reloads building fresh projects — the cached fit is always for
	// a prefix of the shadow.
	proj.assignMu.Lock()
	tbl := p.growShadow(proj)
	proj.assignMu.Unlock()
	//lint:allow lockcheck lock-free read per the comment above: refreshes are serialised on the project's home shard worker, so nothing grows the shadow concurrently
	shadow, total := proj.shadow, proj.shadowAt

	p.mu.Lock()
	m := proj.lastModel
	p.mu.Unlock()

	switch {
	case m == nil:
		// Cold start directly on the shadow log: EM may run long, and
		// Submit must not block behind it — the shadow is exactly the
		// decoupling the old snapshot clone provided, minus the copy, and
		// the fitted model keys on its pointer identity so every later
		// refresh streams.
		opts := core.Options{MaxIter: 50}
		if proj.rep != nil {
			opts.WorkerWeights = proj.rep.Weights()
		}
		fit, err := core.Infer(tbl, shadow, opts)
		if err != nil {
			return err
		}
		m = fit
		p.mu.Lock()
		proj.lastModel, proj.logAtModel = m, total
		p.mu.Unlock()
	case total > proj.logAtModel:
		// Streaming refresh: absorb the shadow's new suffix in place. A
		// polished refresh keeps the full iteration budget — seeding at
		// the previous optimum shortens the path to convergence, it must
		// not lower the convergence guarantee of requester-facing
		// estimates; runs that start near the optimum still stop after a
		// couple of iterations via the tolerance. The polish-cadence knob
		// (polishFrac) can thin polishes out to a fraction of refreshes,
		// the rest running only the dirty-cell pass.
		n, err := m.IngestFrom(shadow)
		if err != nil {
			return err
		}
		if n > 0 {
			if proj.rep != nil {
				// Refresh the per-worker trust weights before EM touches
				// the new answers: quarantined/banned workers' evidence is
				// scaled down (or out) of the sufficient statistics.
				m.SetWorkerWeights(proj.rep.Weights())
			}
			m.RefreshIncremental(proj.nextPolishBudget())
		}
		p.mu.Lock()
		proj.logAtModel = total
		p.mu.Unlock()
	default:
		// Nothing new since the last publish: keep the current snapshot
		// (skipping the Estimates rebuild keeps idle refreshes O(1)).
		if proj.snapshot.Load() != nil {
			return nil
		}
	}

	res := &InferenceResult{
		Estimates:     m.Estimates(),
		WorkerQuality: make(map[tabular.WorkerID]float64, len(m.WorkerIDs)),
		Iterations:    m.Iterations,
		Converged:     m.Converged,
		AnswersSeen:   proj.logAtModel,
	}
	for _, u := range m.WorkerIDs {
		res.WorkerQuality[u] = m.WorkerQuality(u)
	}
	if proj.rep != nil {
		// Close the loop: push the model's own worker-quality posteriors
		// back into the reputation engine. Quality only modulates the
		// weight of already-suspect workers — it never touches counters or
		// states, so verdict sequences stay independent of refresh timing.
		for _, u := range m.WorkerIDs {
			proj.rep.ObserveModelQuality(u, m.WorkerQuality(u))
		}
	}
	p.publishSnapshot(proj, res)
	return nil
}

// nextPolishBudget resolves the polish-cadence knob for one streaming
// refresh: the full iteration budget when a polish is due, 0 (dirty-cell
// E-step plus deferred polish) otherwise. Runs only on the project's home
// shard worker under inferMu, so the accumulator needs no lock.
//
//tcrowd:locked Project.inferMu
func (proj *Project) nextPolishBudget() int {
	if proj.polishFrac <= 0 || proj.polishFrac >= 1 {
		return 50
	}
	proj.polishAcc += proj.polishFrac
	if proj.polishAcc >= 1 {
		proj.polishAcc--
		return 50
	}
	return 0
}

// WorkerReputationInfo is one worker's reputation snapshot plus the
// derived serving-side values (suspicion score, E-step weight).
type WorkerReputationInfo struct {
	reputation.WorkerSnapshot
	Score  float64
	Weight float64
}

// WorkerReputations lists a project's per-worker reputation state sorted
// by worker id. enabled reports whether the project runs the reputation
// engine at all; when false the list is empty.
func (p *Platform) WorkerReputations(projectID string) (infos []WorkerReputationInfo, enabled bool, err error) {
	p.mu.Lock()
	proj, ok := p.projects[projectID]
	p.mu.Unlock()
	if !ok {
		return nil, false, ErrNoProject
	}
	if proj.rep == nil {
		return nil, false, nil
	}
	snaps := proj.rep.Snapshot()
	infos = make([]WorkerReputationInfo, len(snaps))
	for i, s := range snaps {
		infos[i] = WorkerReputationInfo{
			WorkerSnapshot: s,
			Score:          proj.rep.Score(s.Worker),
			Weight:         proj.rep.Weight(s.Worker),
		}
	}
	return infos, true, nil
}

// publishSnapshot is the copy-on-publish commit point, running on the
// project's shard worker at the end of a refresh: it assigns the next
// generation, installs the result (retained ring, snapshot pointer, watch
// fan-out — shared with replication apply via installResult), and hands
// the publish to the cluster replication hook when one is registered.
func (p *Platform) publishSnapshot(proj *Project, res *InferenceResult) {
	prev := proj.snapshot.Load()
	res.Generation = 1
	delta := res.AnswersSeen
	if prev != nil {
		res.Generation = prev.Generation + 1
		delta = res.AnswersSeen - prev.AnswersSeen
	}
	changed, cells, overflow := changedCells(prev, res, proj.Table)
	ev := api.WatchEvent{
		Project:       proj.ID,
		Generation:    res.Generation,
		AnswersSeen:   res.AnswersSeen,
		AnswersDelta:  delta,
		ChangedCells:  changed,
		Cells:         cells,
		CellsOverflow: overflow,
		Workers:       len(res.WorkerQuality),
		Converged:     res.Converged,
	}
	p.installResult(proj, res, ev)
	if hook := p.pubHook.Load(); hook != nil {
		(*hook)(ProjectMeta{ID: proj.ID, Schema: proj.Table.Schema, Entities: proj.Table.Entities}, res, ev)
	}
}

// installResult enters a numbered result into the project's serving state:
// the retained ring (count cap, then the optional byte cap), the
// latest-event slot, the atomic snapshot pointer, and the watch fan-out.
// It is the half of a publish shared by home refreshes (publishSnapshot)
// and follower replication (ApplyReplicatedGeneration). Callers guarantee
// res.Generation exceeds the currently installed generation.
func (p *Platform) installResult(proj *Project, res *InferenceResult, ev api.WatchEvent) {
	res.memSize = res.estimateMemSize()
	proj.genMu.Lock()
	if len(proj.retained) < p.retain {
		proj.retained = append(proj.retained, res)
	} else {
		// Shift-in-place eviction: the backing array is at capacity for
		// the life of the project, so steady-state publishes allocate
		// nothing here (an append/reslice ring re-allocates every few
		// publishes as the trimmed capacity runs out).
		copy(proj.retained, proj.retained[1:])
		proj.retained[len(proj.retained)-1] = res
	}
	if p.retainBytes > 0 {
		var total int64
		for _, r := range proj.retained {
			total += r.memSize
		}
		// Evict oldest-first past the byte cap; the latest generation is
		// always retained, however large. The backing array keeps its
		// capacity (nil-out then reslice), so the count-cap fast path
		// above stays allocation-free.
		for total > p.retainBytes && len(proj.retained) > 1 {
			total -= proj.retained[0].memSize
			copy(proj.retained, proj.retained[1:])
			proj.retained[len(proj.retained)-1] = nil
			proj.retained = proj.retained[:len(proj.retained)-1]
		}
	}
	proj.lastEvent = ev
	proj.genMu.Unlock()
	proj.snapshot.Store(res)
	proj.hub.publish(ev)
}

// changedCells diffs two published results: the count of estimate cells
// whose value moved (every non-empty cell for the first publish), the
// first api.MaxChangedCells of them as an addressable list (row-major,
// so dashboards patch incrementally instead of re-fetching pages), and
// whether the list overflowed that cap.
func changedCells(prev, cur *InferenceResult, tbl *tabular.Table) (int, []api.ChangedCell, bool) {
	n := 0
	// One exact allocation: the cap can never exceed the table size or
	// api.MaxChangedCells, and publishes run per refresh on the hot path.
	cells := make([]api.ChangedCell, 0,
		min(api.MaxChangedCells, len(cur.Estimates)*len(tbl.Schema.Columns)))
	record := func(i, j int) {
		n++
		if n <= api.MaxChangedCells {
			cells = append(cells, api.ChangedCell{
				Row:    i,
				Entity: tbl.Entities[i],
				Column: tbl.Schema.Columns[j].Name,
			})
		}
	}
	for i := range cur.Estimates {
		for j := range cur.Estimates[i] {
			v := cur.Estimates[i][j]
			switch {
			case prev == nil:
				if !v.IsNone() {
					record(i, j)
				}
			case !v.Equal(prev.Estimates[i][j]):
				record(i, j)
			}
		}
	}
	return n, cells, n > api.MaxChangedCells
}

// Stats summarises collection progress.
type Stats struct {
	Rows           int     `json:"rows"`
	Columns        int     `json:"columns"`
	Cells          int     `json:"cells"`
	Answers        int     `json:"answers"`
	Workers        int     `json:"workers"`
	AnswersPerTask float64 `json:"answers_per_task"`
}

// Stats returns collection progress for a project.
func (p *Platform) Stats(projectID string) (Stats, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	proj, ok := p.projects[projectID]
	if !ok {
		return Stats{}, ErrNoProject
	}
	answers, workers := proj.Log.Len(), proj.Log.NumWorkers()
	if proj.follower {
		// A follower's local log lags (or is empty): report the counters of
		// the newest replicated generation instead, so freshness checks
		// (Fresh = AnswersSeen == Stats.Answers) agree with the home node
		// once replication has quiesced.
		answers, workers = proj.replicaAnswers, proj.replicaWorkers
	}
	return Stats{
		Rows:           proj.Table.NumRows(),
		Columns:        proj.Table.NumCols(),
		Cells:          proj.Table.NumCells(),
		Answers:        answers,
		Workers:        workers,
		AnswersPerTask: float64(answers) / float64(proj.Table.NumCells()),
	}, nil
}

// persisted wire format.
type projectJSON struct {
	ID       string          `json:"id"`
	Schema   tabular.Schema  `json:"schema"`
	Entities []string        `json:"entities"`
	Answers  json.RawMessage `json:"answers"`
	TCrowd   bool            `json:"tcrowd_assignment"`
	// RefreshEvery persists the project's refresh cadence (0 in state
	// files predating the field decodes to the default).
	RefreshEvery int `json:"refresh_every,omitempty"`
	// FsyncPolicy persists the project's durability override (empty in
	// state files predating the field decodes to the platform default).
	FsyncPolicy string `json:"fsync_policy,omitempty"`
	// PolishFrac persists the polish-cadence knob (0 = every refresh).
	PolishFrac float64 `json:"polish_frac,omitempty"`
	// Reputation persists whether the project runs the reputation engine.
	// Only the flag is exported: trust state rebuilds from live traffic
	// after an import (the WAL, not the export, is the durability story).
	Reputation bool `json:"reputation,omitempty"`
}

type platformJSON struct {
	Projects []projectJSON `json:"projects"`
}

// Save serialises every project (schema, entities, answer log) as JSON.
func (p *Platform) Save(w io.Writer) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out platformJSON
	for _, id := range p.projectIDsLocked() {
		proj := p.projects[id]
		var buf bytes.Buffer
		if err := tabular.EncodeAnswers(&buf, proj.Table.Schema, proj.Log); err != nil {
			return err
		}
		out.Projects = append(out.Projects, projectJSON{
			ID:           proj.ID,
			Schema:       proj.Table.Schema,
			Entities:     proj.Table.Entities,
			Answers:      json.RawMessage(buf.Bytes()),
			TCrowd:       proj.sys != nil,
			RefreshEvery: proj.refreshEvery,
			FsyncPolicy:  proj.fsyncPolicy,
			PolishFrac:   proj.polishFrac,
			Reputation:   proj.rep != nil,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// projectIDsLocked lists project IDs in sorted order.
//
//tcrowd:locked Platform.mu
func (p *Platform) projectIDsLocked() []string {
	out := make([]string, 0, len(p.projects))
	for id := range p.projects {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Load restores a platform previously written by Save, with default
// serving options.
func Load(r io.Reader, seed int64) (*Platform, error) {
	return LoadWithOptions(r, seed, Options{})
}

// LoadWithOptions restores a platform previously written by Save with an
// explicitly sized shard scheduler. It is ImportProjects into a fresh
// platform; see there for the warmup and durability semantics.
func LoadWithOptions(r io.Reader, seed int64, opts Options) (*Platform, error) {
	p := NewWithOptions(seed, opts)
	if _, err := p.ImportProjects(r); err != nil {
		p.Close() // release the scheduler workers of the abandoned platform
		return nil, err
	}
	return p, nil
}

// ImportProjects restores every project from a Save-format export into
// the platform, returning how many were imported. An export naming an
// existing project fails with ErrDuplicateID (projects before it in the
// export stay imported). With durability enabled each imported project is
// fully logged — a create record plus one batch record holding its
// answers — so imports survive crashes like any other write.
//
// Cached models and snapshots are not persisted, so each imported project
// with answers gets a warmup refresh enqueued on its home shard: the cold
// fit runs in the background and the generation-pinned read path serves
// as soon as it publishes, instead of 404ing until the first post-import
// write. Warmup jobs coalesce like any refresh (one queue entry per
// project) and are best-effort — one shed by a saturated shard is retried
// by the project's first submission.
func (p *Platform) ImportProjects(r io.Reader) (int, error) {
	var in platformJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return 0, err
	}
	var warm []*Project
	n := 0
	for _, pj := range in.Projects {
		proj, err := p.CreateProject(pj.ID, pj.Schema, ProjectConfig{
			Rows:                len(pj.Entities),
			Entities:            pj.Entities,
			UseTCrowdAssignment: pj.TCrowd,
			RefreshEvery:        pj.RefreshEvery,
			FsyncPolicy:         pj.FsyncPolicy,
			PolishFrac:          pj.PolishFrac,
			Reputation:          pj.Reputation,
		})
		if err != nil {
			return n, err
		}
		log, err := tabular.DecodeAnswers(bytes.NewReader(pj.Answers), pj.Schema)
		if err != nil {
			return n, err
		}
		if log.Len() > 0 {
			if err := p.importAnswers(proj, log); err != nil {
				return n, err
			}
			warm = append(warm, proj)
		}
		n++
	}
	for _, proj := range warm {
		_ = p.sched.Submit(proj.ID, func() error { return p.refreshProject(proj) })
	}
	return n, nil
}

// importAnswers installs an imported answer log on a freshly created
// project, logging it as one batch record first when durability is on.
func (p *Platform) importAnswers(proj *Project, log *tabular.AnswerLog) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	rotated := false
	if proj.wal != nil {
		blob, err := tabular.MarshalAnswers(proj.Table.Schema, log.All())
		if err != nil {
			return err
		}
		rotated, err = proj.wal.Append(wal.Record{Type: walRecBatch, Data: blob})
		if err != nil {
			return fmt.Errorf("%w: %v", ErrDurability, err)
		}
	}
	// The swap is safe for the shared shadow log because imports target
	// freshly created (answerless) projects: the shadow has absorbed
	// nothing, so the new log still extends its empty prefix. The model
	// cursors are reset for the same reason — defensively, since a cached
	// fit cannot exist yet.
	proj.Log = log
	//lint:allow lockcheck imports target freshly created projects that have never refreshed, so no inference holds inferMu yet; the reset is defensive (see the comment above)
	proj.lastModel, proj.logAtModel = nil, 0
	if rotated {
		p.scheduleCompaction(proj.ID, proj)
	}
	return nil
}
