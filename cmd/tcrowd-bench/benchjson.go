package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"tcrowd/api"
	"tcrowd/client"
	"tcrowd/internal/assign"
	"tcrowd/internal/core"
	"tcrowd/internal/platform"
	"tcrowd/internal/simulate"
	"tcrowd/internal/stats"
	"tcrowd/internal/tabular"
	"tcrowd/internal/wal"
)

// Machine-readable hot-path benchmarking: `tcrowd-bench -bench-json N`
// re-runs the library's hot-path micro-benchmarks via testing.Benchmark and
// writes BENCH_N.json, so the performance trajectory is tracked across PRs
// (BENCH_0.json is the pre-optimisation seed baseline). The workloads
// mirror bench_test.go's BenchmarkInfer / BenchmarkRefreshWarmVsCold /
// BenchmarkInfoGainScoring exactly.

// benchResult is one benchmark's steady-state cost.
type benchResult struct {
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// Metrics carries the benchmark's custom b.ReportMetric units (e.g.
	// the sim/accuracy-spam series' acc_on_pct / acc_off_pct / gap_pct).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// benchFile is the schema of BENCH_<n>.json.
type benchFile struct {
	Index     int    `json:"index"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// Cores is GOMAXPROCS at run time — context for the shard/ multi-core
	// series (a w4 number measured on 2 cores is not comparable to one
	// measured on 8).
	Cores      int                    `json:"cores"`
	Benchmarks map[string]benchResult `json:"benchmarks"`
}

// inferWorkload mirrors bench_test.go's BenchmarkInfer datasets.
func inferWorkload(rows int) (*simulate.Dataset, *tabular.AnswerLog) {
	return inferWorkloadDepth(rows, 5)
}

// inferWorkloadDepth is inferWorkload with a configurable answers-per-cell
// depth: rows x 10 cols x depth answers. Depth 50 on 200 rows yields the
// 100k-answer log of the ingest/refresh-100k-log series, which pins that
// streaming-refresh cost depends on the batch, not the log.
func inferWorkloadDepth(rows, depth int) (*simulate.Dataset, *tabular.AnswerLog) {
	ds := simulate.Generate(stats.NewRNG(23), simulate.TableConfig{
		Rows: rows, Cols: 10, CatRatio: 0.5,
		Population: simulate.PopulationConfig{N: 50},
	})
	return ds, simulate.NewCrowd(ds, 24).FixedAssignment(depth)
}

// hotBenches enumerates the tracked hot-path benchmarks.
func hotBenches() []struct {
	name string
	fn   func(b *testing.B)
} {
	return []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"infer/1k-answers", benchInfer(20)},
		{"infer/10k-answers", benchInfer(200)},
		{"refresh/cold", benchRefresh(false)},
		{"refresh/warm", benchRefresh(true)},
		{"ingest/append-50", benchIngestAppend(200, 50)},
		{"ingest/refresh-batch-10", benchIngestRefresh(200, 5, 10)},
		{"ingest/refresh-batch-50", benchIngestRefresh(200, 5, 50)},
		{"ingest/refresh-batch-200", benchIngestRefresh(200, 5, 200)},
		{"ingest/refresh-5k-log-batch-50", benchIngestRefresh(100, 5, 50)},
		{"ingest/refresh-100k-log-batch-50", benchIngestRefresh(200, 50, 50)},
		{"ingest/polish-batch-50", benchIngestPolish(200, 5, 50)},
		{"ingest/polish-100k-log-batch-50", benchIngestPolish(200, 50, 50)},
		{"shard/refresh-16proj-w1", benchShardRefresh(16, 1)},
		{"shard/refresh-16proj-w2", benchShardRefresh(16, 2)},
		{"shard/refresh-16proj-w4", benchShardRefresh(16, 4)},
		{"wal/append-batch-1-always", benchWALAppendBatch(1, wal.SyncAlways)},
		{"wal/append-batch-50-always", benchWALAppendBatch(50, wal.SyncAlways)},
		{"wal/append-batch-200-always", benchWALAppendBatch(200, wal.SyncAlways)},
		{"wal/append-batch-1-never", benchWALAppendBatch(1, wal.SyncNever)},
		{"wal/append-batch-50-never", benchWALAppendBatch(50, wal.SyncNever)},
		{"wal/append-batch-200-never", benchWALAppendBatch(200, wal.SyncNever)},
		{"wal/group-commit-16proj", benchWALGroupCommit(16, 50)},
		{"server/submit-batch-1", benchServerSubmitBatch(1, false)},
		{"server/submit-batch-50", benchServerSubmitBatch(50, false)},
		{"server/submit-batch-200", benchServerSubmitBatch(200, false)},
		{"server/submit-batch-200-durable", benchServerSubmitBatch(200, true)},
		{"server/estimates-paged-10k", benchServerEstimatesPaged},
		{"server/watch-fanout-32", benchServerWatchFanout(32)},
		{"infogain-scoring", benchInfoGain},
		{"sim/accuracy-spam-10pct", benchAccuracySpam(0.1, 0, 0.4)},
		{"sim/accuracy-spam-30pct", benchAccuracySpam(0.3, 0, 0.4)},
	}
}

func benchInfer(rows int) func(b *testing.B) {
	return func(b *testing.B) {
		ds, log := inferWorkload(rows)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := core.Infer(ds.Table, log, core.Options{MaxIter: 10, Tol: 1e-12}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchRefresh measures an online refresh after an answer batch lands on
// an already-fitted system: cold re-runs full EM from scratch on the
// grown log, warm seeds from the previous model (assign.TCrowdSystem's
// default behaviour). Each timed iteration refreshes on a fresh batch
// appended to a clone of the base log (clone excluded from the timing),
// mirroring bench_test.go's BenchmarkRefreshWarmVsCold.
func benchRefresh(warm bool) func(b *testing.B) {
	return func(b *testing.B) {
		ds, base := inferWorkload(100)
		sys := assign.NewTCrowdSystem(25)
		if warm {
			if err := sys.Refresh(ds.Table, base); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			log := base.Clone()
			simulate.NewCrowd(ds, 26+int64(i)).AppendBatch(log, 50)
			b.StartTimer()
			if warm {
				if err := sys.Refresh(ds.Table, log); err != nil {
					b.Fatal(err)
				}
			} else {
				if _, err := core.Infer(ds.Table, log, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// benchIngestRefresh measures the streaming refresh of the online loop:
// the assignment system is fitted once, then every timed iteration appends
// a fresh batch to the SAME log object (append untimed) and refreshes —
// which takes the incremental path: suffix ingest into the fitted model's
// CSR store plus a short warm polish, with no per-refresh rebuild. The log
// is reset to its base size periodically (untimed) so per-op cost reflects
// a steady log size. The refresh/warm series is the rebuild counterpart:
// same pipeline, full re-decode per refresh.
func benchIngestRefresh(rows, depth, batch int) func(b *testing.B) {
	return func(b *testing.B) {
		ds, base := inferWorkloadDepth(rows, depth)
		crowd := simulate.NewCrowd(ds, 27)
		var (
			sys   *assign.TCrowdSystem
			log   *tabular.AnswerLog
			grown int
		)
		reset := func() {
			log = base.Clone()
			sys = assign.NewTCrowdSystem(25)
			if err := sys.Refresh(ds.Table, log); err != nil {
				b.Fatal(err)
			}
			grown = 0
		}
		reset()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			if grown > 2000 {
				reset()
			}
			crowd.AppendBatch(log, batch)
			grown += batch
			b.StartTimer()
			if err := sys.Refresh(ds.Table, log); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchIngestPolish measures one explicit EM polish iteration over the
// sufficient-statistics store: every timed op ingests a fresh batch and
// runs RefreshIncremental(1), so the M-step re-reads the per-(cell,worker)
// groups instead of the raw log. The 100k-log variant of this series pins
// the O(batch)+O(groups) claim: the polish cost tracks the distinct
// (cell,worker) count, not the answer count, so a 10x deeper log must not
// cost 10x per polish.
func benchIngestPolish(rows, depth, batch int) func(b *testing.B) {
	return func(b *testing.B) {
		ds, base := inferWorkloadDepth(rows, depth)
		crowd := simulate.NewCrowd(ds, 27)
		var (
			m     *core.Model
			log   *tabular.AnswerLog
			grown int
		)
		reset := func() {
			log = base.Clone()
			var err error
			m, err = core.Infer(ds.Table, log, core.Options{MaxIter: 5})
			if err != nil {
				b.Fatal(err)
			}
			grown = 0
		}
		reset()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			if grown > 2000 {
				reset()
			}
			crowd.AppendBatch(log, batch)
			grown += batch
			b.StartTimer()
			if _, err := m.IngestFrom(log); err != nil {
				b.Fatal(err)
			}
			m.RefreshIncremental(1)
		}
	}
}

// benchIngestAppend isolates raw ingestion cost (decode + in-place CSR
// merge + dirty tracking, no EM polish): O(batch) work against a large
// fitted store.
func benchIngestAppend(rows, batch int) func(b *testing.B) {
	return func(b *testing.B) {
		ds, base := inferWorkload(rows)
		crowd := simulate.NewCrowd(ds, 28)
		var (
			m     *core.Model
			log   *tabular.AnswerLog
			grown int
		)
		reset := func() {
			log = base.Clone()
			var err error
			m, err = core.Infer(ds.Table, log, core.Options{MaxIter: 5})
			if err != nil {
				b.Fatal(err)
			}
			grown = 0
		}
		reset()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			if grown > 5000 {
				reset()
			}
			crowd.AppendBatch(log, batch)
			grown += batch
			b.StartTimer()
			if _, err := m.IngestFrom(log); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchShardRefresh measures multi-project serving throughput through the
// shard scheduler: nproj projects (each with its own fitted model and
// ~900-answer log) live on one platform with the given inference worker
// count; every timed op appends a 20-answer batch to each project (untimed)
// and then drives one strongly consistent refresh per project concurrently
// through the per-shard queues, timing the makespan. Projects are small
// enough that each EM refresh runs serially, so throughput scaling across
// the w1/w2/w4 series isolates the scheduler's cross-project parallelism.
// Logs are reset to their base size periodically (untimed) so per-op cost
// reflects a steady log size.
func benchShardRefresh(nproj, workers int) func(b *testing.B) {
	return func(b *testing.B) {
		ds := simulate.Generate(stats.NewRNG(29), simulate.TableConfig{
			Rows: 30, Cols: 6, CatRatio: 0.5,
			Population: simulate.PopulationConfig{N: 20},
		})
		base := simulate.NewCrowd(ds, 30).FixedAssignment(5)

		var (
			p      *platform.Platform
			ids    []string
			logs   []*tabular.AnswerLog
			crowds []*simulate.Crowd
			grown  int
		)
		reset := func() {
			if p != nil {
				p.Close()
			}
			p = platform.NewWithOptions(1, platform.Options{Workers: workers, QueueDepth: 1024})
			ids = make([]string, nproj)
			logs = make([]*tabular.AnswerLog, nproj)
			crowds = make([]*simulate.Crowd, nproj)
			for i := 0; i < nproj; i++ {
				ids[i] = fmt.Sprintf("proj-%02d", i)
				if _, err := p.CreateProject(ids[i], ds.Table.Schema, platform.ProjectConfig{Rows: ds.Table.NumRows()}); err != nil {
					b.Fatal(err)
				}
				proj, err := p.Project(ids[i])
				if err != nil {
					b.Fatal(err)
				}
				proj.Log = base.Clone()
				logs[i] = proj.Log
				crowds[i] = simulate.NewCrowd(ds, 100+int64(i))
				// Cold fit now so timed ops measure steady-state
				// streaming refreshes.
				if _, err := p.RunInference(ids[i]); err != nil {
					b.Fatal(err)
				}
			}
			grown = 0
		}
		reset()
		defer func() { p.Close() }()
		b.ReportAllocs()
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			b.StopTimer()
			if grown > 2000 {
				reset()
			}
			for i := range logs {
				crowds[i].AppendBatch(logs[i], 20)
			}
			grown += 20
			b.StartTimer()
			var wg sync.WaitGroup
			for _, id := range ids {
				wg.Add(1)
				go func(id string) {
					defer wg.Done()
					if _, err := p.RunInference(id); err != nil {
						b.Error(err)
					}
				}(id)
			}
			wg.Wait()
		}
	}
}

// benchWALAppendBatch measures the durability hot path in isolation: one
// framed append (encode + CRC + write, plus an fsync under SyncAlways)
// per answer batch, against the real filesystem. A batch is ONE record
// however many answers it carries, so the per-answer cost of the
// batch-200 series sits far below batch-1 — the same amortization the
// server batch endpoint pins, extended through the disk. The log is
// rebuilt periodically (untimed) so disk use stays bounded at any b.N.
func benchWALAppendBatch(batch int, policy wal.SyncPolicy) func(b *testing.B) {
	return func(b *testing.B) {
		schema := tabular.Schema{
			Key: "item",
			Columns: []tabular.Column{
				{Name: "c0", Type: tabular.Categorical, Labels: []string{"a", "b", "c"}},
				{Name: "c1", Type: tabular.Continuous, Min: 0, Max: 100},
			},
		}
		answers := make([]tabular.Answer, batch)
		for i := range answers {
			answers[i] = tabular.Answer{
				Worker: tabular.WorkerID(fmt.Sprintf("w%04d", i)),
				Cell:   tabular.Cell{Row: i, Col: i % 2},
				Value:  tabular.NumberValue(float64(i % 100)),
			}
		}
		blob, err := tabular.MarshalAnswers(schema, answers)
		if err != nil {
			b.Fatal(err)
		}
		root, err := os.MkdirTemp("", "tcrowd-wal-bench-")
		if err != nil {
			b.Fatal(err)
		}
		defer os.RemoveAll(root)
		var (
			l    *wal.Log
			dirN int
			ops  int
		)
		reset := func() {
			if l != nil {
				l.Close()
				os.RemoveAll(fmt.Sprintf("%s/log%d", root, dirN))
				dirN++
			}
			var err error
			l, _, err = wal.Open(fmt.Sprintf("%s/log%d", root, dirN), wal.Options{Policy: policy, CheckpointType: 1})
			if err != nil {
				b.Fatal(err)
			}
			ops = 0
		}
		reset()
		defer func() { l.Close() }()
		rec := wal.Record{Type: 3, Data: blob}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if ops > 2000 {
				b.StopTimer()
				reset()
				b.StartTimer()
			}
			ops++
			if _, err := l.Append(rec); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchWALGroupCommit measures the -fsync=interval append path with many
// live project logs: nproj SyncInterval logs share ONE background flusher
// (the group-commit registry), so an append is frame + CRC + buffered
// write only — the fsyncs happen off the hot path, batched across every
// dirty log per interval tick. One op is one batch append on one of the
// logs, round-robin, which is the many-projects-one-server shape the
// cluster serves. Compare against wal/append-batch-50-always to see the
// latency the shared flusher buys.
func benchWALGroupCommit(nproj, batch int) func(b *testing.B) {
	return func(b *testing.B) {
		schema := tabular.Schema{
			Key: "item",
			Columns: []tabular.Column{
				{Name: "c0", Type: tabular.Categorical, Labels: []string{"a", "b", "c"}},
				{Name: "c1", Type: tabular.Continuous, Min: 0, Max: 100},
			},
		}
		answers := make([]tabular.Answer, batch)
		for i := range answers {
			answers[i] = tabular.Answer{
				Worker: tabular.WorkerID(fmt.Sprintf("w%04d", i)),
				Cell:   tabular.Cell{Row: i, Col: i % 2},
				Value:  tabular.NumberValue(float64(i % 100)),
			}
		}
		blob, err := tabular.MarshalAnswers(schema, answers)
		if err != nil {
			b.Fatal(err)
		}
		root, err := os.MkdirTemp("", "tcrowd-wal-group-bench-")
		if err != nil {
			b.Fatal(err)
		}
		defer os.RemoveAll(root)
		var (
			logs []*wal.Log
			gen  int
			ops  int
		)
		closeAll := func() {
			for _, l := range logs {
				l.Close()
			}
			logs = nil
		}
		reset := func() {
			closeAll()
			os.RemoveAll(fmt.Sprintf("%s/gen%d", root, gen))
			gen++
			for i := 0; i < nproj; i++ {
				l, _, err := wal.Open(fmt.Sprintf("%s/gen%d/p%02d", root, gen, i), wal.Options{
					Policy: wal.SyncInterval, Interval: 10 * time.Millisecond, CheckpointType: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				logs = append(logs, l)
			}
			ops = 0
		}
		reset()
		defer closeAll()
		rec := wal.Record{Type: 3, Data: blob}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if ops > 2000*nproj {
				b.StopTimer()
				reset()
				b.StartTimer()
			}
			ops++
			if _, err := logs[i%nproj].Append(rec); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchServerSubmitBatch measures one wire-level answer submission of the
// given batch size through the full stack: the v1 client SDK -> JSON ->
// HTTP -> server validation -> atomic log append -> one coalesced refresh
// enqueue. The project refreshes every answer (RefreshEvery 1), so a
// batch of N amortizes both the per-request JSON/HTTP overhead and the
// refresh enqueue N ways — the batch-200 series costs far less than 200x
// the batch-1 series, which is the amortization claim the BENCH series
// pins. Every op submits from a fresh worker id (double answers would
// 409); the platform is rebuilt periodically (untimed) to keep log size
// steady.
//
// With durable=true the platform writes a real fsync=always WAL: the
// batch is framed, CRC'd, written, and fsynced before the 201 — the
// whole durability tax is ONE record append per request, which is the
// acceptance claim of the durable series (within 2x of the in-memory
// batch-200 per answer).
func benchServerSubmitBatch(batch int, durable bool) func(b *testing.B) {
	return func(b *testing.B) {
		schema := tabular.Schema{
			Key: "item",
			Columns: []tabular.Column{
				{Name: "c0", Type: tabular.Categorical, Labels: []string{"a", "b", "c"}},
				{Name: "c1", Type: tabular.Continuous, Min: 0, Max: 100},
				{Name: "c2", Type: tabular.Categorical, Labels: []string{"x", "y"}},
				{Name: "c3", Type: tabular.Continuous, Min: 0, Max: 100},
			},
		}
		const rows = 60 // 240 cells >= the largest batch
		cols := schema.Columns
		// One reusable batch template; only the worker id changes per op.
		answers := make([]api.Answer, batch)
		for i := range answers {
			row, j := i/len(cols), i%len(cols)
			if cols[j].Type == tabular.Categorical {
				answers[i] = api.LabelAnswer("", row, cols[j].Name, cols[j].Labels[i%len(cols[j].Labels)])
			} else {
				answers[i] = api.NumberAnswer("", row, cols[j].Name, float64(10+i%80))
			}
		}
		var (
			p    *platform.Platform
			srv  *httptest.Server
			c    *client.Client
			op   int
			sent int
		)
		var walRoot string
		if durable {
			var err error
			walRoot, err = os.MkdirTemp("", "tcrowd-srv-wal-bench-")
			if err != nil {
				b.Fatal(err)
			}
			defer os.RemoveAll(walRoot)
		}
		walGen := 0
		reset := func() {
			if srv != nil {
				srv.Close()
				p.Close()
			}
			opts := platform.Options{Workers: 1, QueueDepth: 4096}
			if durable {
				// A fresh WAL dir per reset: the old incarnation's log would
				// otherwise refuse the duplicate project create.
				os.RemoveAll(fmt.Sprintf("%s/gen%d", walRoot, walGen))
				walGen++
				opts.WAL = &platform.WALOptions{
					Dir:    fmt.Sprintf("%s/gen%d", walRoot, walGen),
					Policy: wal.SyncAlways,
				}
			}
			p = platform.NewWithOptions(1, opts)
			srv = httptest.NewServer(platform.NewServer(p))
			c = client.New(srv.URL)
			if _, err := p.CreateProject("bench", schema, platform.ProjectConfig{Rows: rows, RefreshEvery: 1}); err != nil {
				b.Fatal(err)
			}
			sent = 0
		}
		reset()
		defer func() { srv.Close(); p.Close() }()
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			b.StopTimer()
			if sent > 4000 {
				reset()
			}
			w := fmt.Sprintf("w%07d", op)
			op++
			for i := range answers {
				answers[i].Worker = w
			}
			sent += batch
			b.StartTimer()
			var (
				res *api.SubmitAnswersResponse
				err error
			)
			if batch == 1 {
				res, err = c.SubmitAnswer(ctx, "bench", answers[0])
			} else {
				res, err = c.SubmitAnswers(ctx, "bench", answers)
			}
			if err != nil {
				b.Fatal(err)
			}
			if res.Recorded != batch {
				b.Fatalf("recorded %d/%d", res.Recorded, batch)
			}
		}
	}
}

// benchServerEstimatesPaged measures the generation-pinned read path at
// the wire: a full paged walk (limit 250 over a 2000-cell, 10k-answer
// fitted model — 8+ GETs following next_cursor) through the client SDK
// against a live server. The walk is served entirely from the pinned
// immutable snapshot: no platform lock, no shard queue, no EM — per-op
// cost is pages x (HTTP + JSON render), independent of write traffic.
func benchServerEstimatesPaged(b *testing.B) {
	ds, log := inferWorkload(200) // 200 rows x 10 cols, ~10k answers
	p := platform.NewWithOptions(1, platform.Options{Workers: 1})
	defer p.Close()
	if _, err := p.CreateProject("bench", ds.Table.Schema, platform.ProjectConfig{Rows: ds.Table.NumRows()}); err != nil {
		b.Fatal(err)
	}
	proj, err := p.Project("bench")
	if err != nil {
		b.Fatal(err)
	}
	proj.Log = log
	if _, err := p.RunInference("bench"); err != nil { // publish generation 1
		b.Fatal(err)
	}
	srv := httptest.NewServer(platform.NewServer(p))
	defer srv.Close()
	c := client.New(srv.URL)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		est, err := c.AllEstimates(ctx, "bench", 250, client.EstimatesQuery{})
		if err != nil {
			b.Fatal(err)
		}
		if len(est.Estimates) == 0 || est.Generation != 1 {
			b.Fatalf("walk result: %d estimates, generation %d", len(est.Estimates), est.Generation)
		}
	}
}

// benchServerWatchFanout measures push-based delivery end to end: one
// answer submission (RefreshEvery 1, so it publishes a new generation)
// fanned out to `watchers` concurrent SSE streams through the client SDK,
// timed until every stream has observed the bump — the submit -> refresh
// -> publish -> notify -> 32x (marshal + SSE write + parse) pipeline.
func benchServerWatchFanout(watchers int) func(b *testing.B) {
	return func(b *testing.B) {
		schema := tabular.Schema{
			Key: "item",
			Columns: []tabular.Column{
				{Name: "c0", Type: tabular.Categorical, Labels: []string{"a", "b"}},
				{Name: "c1", Type: tabular.Continuous, Min: 0, Max: 100},
			},
		}
		var (
			p      *platform.Platform
			srv    *httptest.Server
			c      *client.Client
			cancel context.CancelFunc
			chans  []<-chan api.WatchEvent
			gen    int
			op     int
		)
		await := func(target int) {
			for _, ch := range chans {
				for ev := range ch {
					if ev.Generation >= target {
						break
					}
				}
			}
		}
		teardown := func() {
			if srv == nil {
				return
			}
			cancel()
			srv.Close()
			p.Close()
		}
		reset := func() {
			teardown()
			p = platform.NewWithOptions(1, platform.Options{Workers: 1, QueueDepth: 4096})
			srv = httptest.NewServer(platform.NewServer(p))
			c = client.New(srv.URL)
			if _, err := p.CreateProject("bench", schema, platform.ProjectConfig{Rows: 3, RefreshEvery: 1}); err != nil {
				b.Fatal(err)
			}
			var ctx context.Context
			ctx, cancel = context.WithCancel(context.Background())
			// Publish generation 1 so watchers have a catch-up event.
			if _, err := c.SubmitAnswer(ctx, "bench", api.NumberAnswer("seed", 0, "c1", 42)); err != nil {
				b.Fatal(err)
			}
			if _, err := c.Estimates(ctx, "bench", client.EstimatesQuery{MinGeneration: api.GenerationFresh}); err != nil {
				b.Fatal(err)
			}
			chans = chans[:0]
			for i := 0; i < watchers; i++ {
				evs, _ := c.WatchStream(ctx, "bench", 0)
				chans = append(chans, evs)
			}
			gen = 1
			await(gen) // drain every watcher's catch-up event
		}
		reset()
		defer teardown()
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			b.StopTimer()
			if gen > 500 {
				reset()
			}
			w := fmt.Sprintf("w%07d", op)
			op++
			b.StartTimer()
			if _, err := c.SubmitAnswer(ctx, "bench", api.NumberAnswer(w, op%3, "c1", float64(10+op%80))); err != nil {
				b.Fatal(err)
			}
			gen++
			await(gen)
		}
	}
}

func benchInfoGain(b *testing.B) {
	ds, log := inferWorkload(60)
	m, err := core.Infer(ds.Table, log, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	u := m.WorkerIDs[0]
	cells := ds.Table.Cells()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range cells {
			assign.InfoGain(m, u, c)
		}
	}
}

// runBenchJSON executes the hot-path benchmarks and writes BENCH_<n>.json.
func runBenchJSON(n int, only []string) error {
	return runBenchFile(fmt.Sprintf("BENCH_%d.json", n), n, only)
}

// benchSelected reports whether a series name passes the -bench-only
// filter (empty filter = run everything). Prefix match, same convention
// as the -gate list, so "-bench-only shard/" runs exactly the multi-core
// scheduler series.
func benchSelected(name string, only []string) bool {
	if len(only) == 0 {
		return true
	}
	for _, p := range only {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// runBenchFile executes the hot-path benchmarks and writes the results to
// an arbitrary path (the CI perf gate benches the PR into a scratch file
// and compares it against the latest committed baseline).
func runBenchFile(path string, n int, only []string) error {
	out := benchFile{
		Index:      n,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Cores:      runtime.GOMAXPROCS(0),
		Benchmarks: make(map[string]benchResult),
	}
	for _, hb := range hotBenches() {
		if !benchSelected(hb.name, only) {
			continue
		}
		fmt.Fprintf(os.Stderr, "benchmarking %s ...\n", hb.name)
		r := testing.Benchmark(hb.fn)
		res := benchResult{
			N:           r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if len(r.Extra) > 0 {
			res.Metrics = make(map[string]float64, len(r.Extra))
			for k, v := range r.Extra {
				res.Metrics[k] = v
			}
		}
		out.Benchmarks[hb.name] = res
		fmt.Fprintf(os.Stderr, "  %s: %.0f ns/op  %d B/op  %d allocs/op\n",
			hb.name, res.NsPerOp, r.AllocedBytesPerOp(), r.AllocsPerOp())
		for k, v := range res.Metrics {
			fmt.Fprintf(os.Stderr, "    %s: %.2f\n", k, v)
		}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
