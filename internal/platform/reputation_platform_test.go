package platform

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"tcrowd/internal/reputation"
	"tcrowd/internal/tabular"
)

// spamSchema is a single 3-label categorical column: every cell's honest
// consensus is deterministic (label row%3), so disagreement is entirely
// under the test's control.
func spamSchema() tabular.Schema {
	return tabular.Schema{
		Key: "item",
		Columns: []tabular.Column{
			{Name: "category", Type: tabular.Categorical, Labels: []string{"a", "b", "c"}},
		},
	}
}

// honestMeta / spamMeta are the two work-time profiles: deliberate vs
// implausibly fast (under the engine's default 500ms floor).
func honestMeta() AnswerMeta { return AnswerMeta{WorkTimeMs: 3000} }
func spamMeta() AnswerMeta   { return AnswerMeta{WorkTimeMs: 80} }

// spamStream builds an interleaved answer stream over `rows` cells:
// honest workers h1..hN agree on label row%3 with deliberate timing,
// spam workers s1..sM give label (row+1)%3 implausibly fast. Honest
// answers come first per cell so the prior-aggregate is seeded before
// spammers are judged against it.
func spamStream(rows, honest, spam int) ([]tabular.Answer, []AnswerMeta) {
	var as []tabular.Answer
	var ms []AnswerMeta
	for r := 0; r < rows; r++ {
		for h := 1; h <= honest; h++ {
			as = append(as, tabular.Answer{
				Worker: tabular.WorkerID(fmt.Sprintf("h%d", h)),
				Cell:   tabular.Cell{Row: r, Col: 0},
				Value:  tabular.LabelValue(r % 3),
			})
			ms = append(ms, honestMeta())
		}
		for s := 1; s <= spam; s++ {
			as = append(as, tabular.Answer{
				Worker: tabular.WorkerID(fmt.Sprintf("s%d", s)),
				Cell:   tabular.Cell{Row: r, Col: 0},
				Value:  tabular.LabelValue((r + 1) % 3),
			})
			ms = append(ms, spamMeta())
		}
	}
	return as, ms
}

// newRepPlatform builds an in-memory platform with one reputation-enabled
// project whose inference refresh is effectively disabled (so reputation
// state is a pure function of the submitted stream, with no async
// model-quality feedback racing the assertions).
func newRepPlatform(t *testing.T, rows int) *Platform {
	t.Helper()
	p := NewWithOptions(1, Options{Workers: 1})
	t.Cleanup(func() { p.Close() })
	_, err := p.CreateProject("rep", spamSchema(), ProjectConfig{
		Rows:         rows,
		RefreshEvery: 1 << 30,
		Reputation:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestReputationVerdictsBatchSplitInvariant is the determinism property:
// the same answer stream must produce bit-identical final reputation
// state however it is chopped into submission batches. The stream is
// sized to drive spammers into quarantine but not ban (a ban would
// reject later batches and fork the accepted streams between splits —
// a different property, covered by the ban tests).
func TestReputationVerdictsBatchSplitInvariant(t *testing.T) {
	const rows = 20
	answers, metas := spamStream(rows, 3, 2)

	run := func(batch int) []WorkerReputationInfo {
		p := newRepPlatform(t, rows)
		for at := 0; at < len(answers); at += batch {
			end := min(at+batch, len(answers))
			if _, err := p.SubmitBatchMeta("rep", answers[at:end], metas[at:end]); err != nil {
				t.Fatalf("batch=%d at=%d: %v", batch, at, err)
			}
		}
		infos, enabled, err := p.WorkerReputations("rep")
		if err != nil || !enabled {
			t.Fatalf("WorkerReputations: enabled=%v err=%v", enabled, err)
		}
		return infos
	}

	want := run(len(answers)) // one atomic batch
	for _, batch := range []int{1, 3, 7} {
		if got := run(batch); !reflect.DeepEqual(got, want) {
			t.Errorf("batch size %d diverged:\n got %+v\nwant %+v", batch, got, want)
		}
	}

	// The stream must actually have exercised the graduated response.
	quarantined := 0
	for _, in := range want {
		if in.Worker[0] == 's' && in.State >= reputation.Quarantined {
			quarantined++
		}
		if in.Worker[0] == 'h' && in.State != reputation.Active {
			t.Errorf("honest worker %s left Active: %+v", in.Worker, in)
		}
	}
	if quarantined == 0 {
		t.Fatalf("no spammer reached quarantine — stream too short to prove anything: %+v", want)
	}
}

// TestReputationBanRejectsSubmissionsAndTasks drives a spammer to the
// auto-ban and pins the wire-visible consequences: per-item
// ErrWorkerBanned on submission, ErrWorkerBanned from the task path,
// and honest workers untouched throughout.
func TestReputationBanRejectsSubmissionsAndTasks(t *testing.T) {
	const rows = 40
	p := newRepPlatform(t, rows)
	answers, metas := spamStream(rows, 3, 1)
	var bannedAt int
	for i := range answers {
		_, err := p.SubmitBatchMeta("rep", answers[i:i+1], metas[i:i+1])
		if err == nil {
			continue
		}
		if answers[i].Worker != "s1" || !errors.Is(err, ErrWorkerBanned) {
			t.Fatalf("answer %d (%s) rejected with %v", i, answers[i].Worker, err)
		}
		if bannedAt == 0 {
			bannedAt = i
		}
	}
	if bannedAt == 0 {
		t.Fatal("spammer never banned")
	}

	// Banned: task requests are refused with the typed sentinel.
	if _, err := p.RequestTasks("rep", "s1", 1); !errors.Is(err, ErrWorkerBanned) {
		t.Fatalf("banned task request: %v", err)
	}
	// Honest: still served.
	if _, err := p.RequestTasks("rep", "h1", 1); err != nil {
		t.Fatalf("honest task request: %v", err)
	}

	infos, _, err := p.WorkerReputations("rep")
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range infos {
		switch {
		case in.Worker == "s1":
			if in.State != reputation.Banned || in.Weight != 0 {
				t.Errorf("spammer state: %+v", in)
			}
		case in.State != reputation.Active || in.Weight != 1:
			t.Errorf("honest worker %s: %+v", in.Worker, in)
		}
	}
}

// TestQuarantineStarvesAssignment pins the graduated middle response: a
// quarantined (not banned) worker gets an empty task list without error,
// and its submissions are still accepted (the fold keeps feeding).
func TestQuarantineStarvesAssignment(t *testing.T) {
	const rows = 18
	p := newRepPlatform(t, rows+1) // one spare row for the post-quarantine submission
	answers, metas := spamStream(rows, 3, 1)
	if _, err := p.SubmitBatchMeta("rep", answers, metas); err != nil {
		t.Fatal(err)
	}
	infos, _, err := p.WorkerReputations("rep")
	if err != nil {
		t.Fatal(err)
	}
	var state reputation.State
	for _, in := range infos {
		if in.Worker == "s1" {
			state = in.State
		}
	}
	if state != reputation.Quarantined {
		t.Fatalf("spammer state = %v, want Quarantined (tune stream length)", state)
	}
	tasks, err := p.RequestTasks("rep", "s1", 3)
	if err != nil || len(tasks) != 0 {
		t.Fatalf("quarantined tasks = %v, %v; want empty, nil", tasks, err)
	}
	// Submissions from quarantine are still accepted — recovery and
	// escalation both need the stream.
	extra := tabular.Answer{Worker: "s1", Cell: tabular.Cell{Row: rows, Col: 0}, Value: tabular.LabelValue(0)}
	if _, err := p.SubmitBatchMeta("rep", []tabular.Answer{extra}, []AnswerMeta{honestMeta()}); err != nil {
		t.Fatalf("quarantined submission rejected: %v", err)
	}
}

// TestPolishFracValidation pins the knob's domain checks and cadence: out
// of [0,1] rejects at create, and a 0.25 setting polishes exactly every
// fourth streaming refresh.
func TestPolishFracValidation(t *testing.T) {
	p := NewWithOptions(1, Options{Workers: 1})
	defer p.Close()
	for _, bad := range []float64{-0.1, 1.5} {
		if _, err := p.CreateProject("bad", demoSchema(), ProjectConfig{Rows: 2, PolishFrac: bad}); err == nil {
			t.Fatalf("polish_frac %v accepted", bad)
		}
	}
	if _, err := p.CreateProject("ok", demoSchema(), ProjectConfig{Rows: 2, PolishFrac: 0.25}); err != nil {
		t.Fatal(err)
	}
	proj, err := p.Project("ok")
	if err != nil {
		t.Fatal(err)
	}
	var polished int
	for i := 0; i < 8; i++ {
		if proj.nextPolishBudget() > 0 {
			polished++
		}
	}
	if polished != 2 {
		t.Fatalf("polish_frac 0.25: %d/8 refreshes polished, want 2", polished)
	}
	// 0 and 1 both mean "always polish" (the pre-knob behaviour).
	for _, frac := range []float64{0, 1} {
		id := fmt.Sprintf("always-%v", frac)
		if _, err := p.CreateProject(id, demoSchema(), ProjectConfig{Rows: 2, PolishFrac: frac}); err != nil {
			t.Fatal(err)
		}
		pr, _ := p.Project(id)
		for i := 0; i < 3; i++ {
			if pr.nextPolishBudget() <= 0 {
				t.Fatalf("polish_frac %v refresh %d skipped polish", frac, i)
			}
		}
	}
}

// TestWorkerReputationsDisabled: a project without the defense reports
// (nil, false, nil) rather than inventing empty state.
func TestWorkerReputationsDisabled(t *testing.T) {
	p := NewWithOptions(1, Options{Workers: 1})
	defer p.Close()
	if _, err := p.CreateProject("plain", demoSchema(), ProjectConfig{Rows: 2}); err != nil {
		t.Fatal(err)
	}
	infos, enabled, err := p.WorkerReputations("plain")
	if err != nil || enabled || infos != nil {
		t.Fatalf("disabled project: infos=%v enabled=%v err=%v", infos, enabled, err)
	}
	if _, _, err := p.WorkerReputations("ghost"); !errors.Is(err, ErrNoProject) {
		t.Fatalf("unknown project: %v", err)
	}
}
