package main

import (
	"errors"
	"testing"

	"tcrowd/internal/metrics"
	"tcrowd/internal/platform"
	"tcrowd/internal/reputation"
	"tcrowd/internal/simulate"
	"tcrowd/internal/stats"
	"tcrowd/internal/tabular"
)

// The sim/accuracy-spam-* series pins the VALUE of the reputation defense
// rather than its speed: the same pre-drawn spam-laced answer stream is
// replayed twice through the platform — defense off, then on — and the
// final-estimate accuracy of both runs lands in the BENCH file as custom
// metrics (acc_off_pct / acc_on_pct / gap_pct, plus the flagged-worker
// precision and recall of the defended run). The series is NOT under the
// ns/op regression gate (`sim/` is absent from the -gate default): its
// contract is the accuracy gap, asserted by the committed BENCH numbers
// and by client.TestAdversarialSpamDefenseEndToEnd at the wire.

// spamScenario is one adversarial workload: an all-categorical table (so
// accuracy is a clean label-match count) and a pre-drawn submission
// stream with the population's spam blanket-covering every cell while
// honest workers cover only a fraction.
type spamScenario struct {
	ds    *simulate.Dataset
	batch []spamBatch
}

type spamBatch struct {
	worker  tabular.WorkerID
	answers []tabular.Answer
	metas   []platform.AnswerMeta
}

// newSpamScenario draws the workload. deceiverFrac of the 10-worker
// population coordinates on the same wrong label per cell; coverage is
// the honest workers' per-cell answer probability. Cells are visited in
// row-major windows, honest submissions preceding spam within each
// window, as task-ordered collection produces.
func newSpamScenario(seed int64, deceiverFrac, junkFrac, coverage float64) *spamScenario {
	ds := simulate.Generate(stats.NewRNG(seed), simulate.TableConfig{
		Rows:      30,
		Cols:      3,
		CatRatio:  1,
		MinLabels: 3,
		MaxLabels: 4,
		Population: simulate.PopulationConfig{
			N:            10,
			MedianPhi:    0.12,
			DeceiverFrac: deceiverFrac,
			JunkFrac:     junkFrac,
		},
	})
	cr := simulate.NewCrowd(ds, seed+1)
	cov := stats.NewRNG(seed + 2)
	rows, cols := ds.Table.NumRows(), ds.Table.NumCols()
	var cells []tabular.Cell
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			cells = append(cells, tabular.Cell{Row: i, Col: j})
		}
	}
	var order []int
	for pass := 0; pass < 2; pass++ {
		for i := range ds.Workers {
			if (ds.Workers[i].Persona == simulate.Honest) == (pass == 0) {
				order = append(order, i)
			}
		}
	}
	sc := &spamScenario{ds: ds}
	const window = 6
	for at := 0; at < len(cells); at += window {
		win := cells[at:min(at+window, len(cells))]
		for _, wi := range order {
			w := &ds.Workers[wi]
			b := spamBatch{worker: w.ID}
			for _, c := range win {
				if w.Persona == simulate.Honest && cov.Float64() > coverage {
					continue
				}
				a, ms := cr.AnswerMeta(w, c)
				b.answers = append(b.answers, a)
				b.metas = append(b.metas, platform.AnswerMeta{WorkTimeMs: ms})
			}
			if len(b.answers) > 0 {
				sc.batch = append(sc.batch, b)
			}
		}
	}
	return sc
}

// replay runs the stream against a fresh platform with the defense on or
// off and returns the truth-match accuracy of the final estimates plus
// the defended run's flagged-worker set (quarantined or banned).
func (sc *spamScenario) replay(b *testing.B, defense bool) (float64, []tabular.WorkerID) {
	p := platform.NewWithOptions(1, platform.Options{Workers: 1})
	defer p.Close()
	const id = "spam"
	if _, err := p.CreateProject(id, sc.ds.Table.Schema, platform.ProjectConfig{
		Rows:         sc.ds.Table.NumRows(),
		RefreshEvery: 1 << 30,
		Reputation:   defense,
	}); err != nil {
		b.Fatal(err)
	}
	banned := make(map[tabular.WorkerID]bool)
	for _, batch := range sc.batch {
		if banned[batch.worker] {
			continue
		}
		if _, err := p.SubmitBatchMeta(id, batch.answers, batch.metas); err != nil {
			if !defense || !errors.Is(err, platform.ErrWorkerBanned) {
				b.Fatalf("defense=%v: worker %s: %v", defense, batch.worker, err)
			}
			banned[batch.worker] = true
		}
	}
	res, err := p.RunInference(id)
	if err != nil {
		b.Fatal(err)
	}
	matched, total := 0, 0
	for _, c := range sc.ds.Table.Cells() {
		est := res.Estimates.At(c)
		if est.Kind != tabular.Label {
			continue
		}
		total++
		if est.L == sc.ds.Table.TruthAt(c).L {
			matched++
		}
	}
	if total == 0 {
		b.Fatal("no categorical estimates")
	}
	var flagged []tabular.WorkerID
	if defense {
		infos, _, err := p.WorkerReputations(id)
		if err != nil {
			b.Fatal(err)
		}
		for _, in := range infos {
			if in.State >= reputation.Quarantined {
				flagged = append(flagged, in.Worker)
			}
		}
	}
	return float64(matched) / float64(total), flagged
}

// benchAccuracySpam builds the scenario once and replays it defense-off
// then defense-on per op, reporting the accuracy margin as custom metrics.
func benchAccuracySpam(deceiverFrac, junkFrac, coverage float64) func(b *testing.B) {
	return func(b *testing.B) {
		sc := newSpamScenario(41, deceiverFrac, junkFrac, coverage)
		var spammers []tabular.WorkerID
		for _, w := range sc.ds.Workers {
			if w.Persona != simulate.Honest {
				spammers = append(spammers, w.ID)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			accOff, _ := sc.replay(b, false)
			accOn, flagged := sc.replay(b, true)
			det := metrics.EvaluateSpamDetection(spammers, flagged)
			b.ReportMetric(100*accOff, "acc_off_pct")
			b.ReportMetric(100*accOn, "acc_on_pct")
			b.ReportMetric(100*(accOn-accOff), "gap_pct")
			b.ReportMetric(100*det.Precision, "spam_precision_pct")
			b.ReportMetric(100*det.Recall, "spam_recall_pct")
		}
	}
}
