package assign

import (
	"math"

	"tcrowd/internal/tabular"
)

// Random assigns uniformly random unanswered cells (the strategy of
// CrowdDB/Deco/Qurk per Sec. 2, and the Fig. 5 baseline).
type Random struct{}

// Name implements Policy.
func (Random) Name() string { return "Random" }

// Select implements Policy.
func (Random) Select(st *State, u tabular.WorkerID, k int) []tabular.Cell {
	cands := candidateCells(st.Model.Table, st.Log, u)
	if len(cands) == 0 {
		return nil
	}
	st.RNG.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	if k > len(cands) {
		k = len(cands)
	}
	return cands[:k]
}

// Looping walks the cells in row-major round-robin order, so answer
// multiplicity stays maximally uniform regardless of content (Fig. 5's
// "Looping" heuristic). It is stateful: the cursor persists across calls.
type Looping struct {
	cursor int
}

// Name implements Policy.
func (*Looping) Name() string { return "Looping" }

// Select implements Policy.
func (lp *Looping) Select(st *State, u tabular.WorkerID, k int) []tabular.Cell {
	tbl := st.Model.Table
	total := tbl.NumCells()
	if total == 0 {
		return nil
	}
	var out []tabular.Cell
	for probed := 0; probed < total && len(out) < k; probed++ {
		idx := (lp.cursor + probed) % total
		c := tabular.Cell{Row: idx / tbl.NumCols(), Col: idx % tbl.NumCols()}
		if !st.Log.HasAnswered(u, c) {
			out = append(out, c)
		}
	}
	lp.cursor = (lp.cursor + len(out)) % total
	return out
}

// Entropy greedily picks the cells with the highest raw entropy: Shannon
// entropy for categorical cells, differential entropy in *natural units*
// for continuous cells. As Sec. 5.1 argues, the two are not commensurable
// — a continuous column spanning hundreds of units carries ln(std) extra
// nats — so this heuristic floods the continuous tasks first, dropping
// MNAD quickly while the Error Rate stalls (Fig. 5's Entropy curve).
type Entropy struct {
	// Parallelism bounds the scoring goroutines (0 = GOMAXPROCS).
	Parallelism int
}

// Name implements Policy.
func (Entropy) Name() string { return "Entropy" }

// Select implements Policy.
func (e Entropy) Select(st *State, u tabular.WorkerID, k int) []tabular.Cell {
	cands := candidateCells(st.Model.Table, st.Log, u)
	if len(cands) == 0 {
		return nil
	}
	scores := scoreAll(cands, e.Parallelism, func(c tabular.Cell) float64 {
		h := st.Model.Entropy(c)
		if st.Model.Table.Schema.Columns[c.Col].Type == tabular.Continuous {
			// Undo the column standardisation: H_natural = H_z + ln(std).
			if std := st.Model.ColStd[c.Col]; std > 0 {
				h += math.Log(std)
			}
		}
		return h
	})
	return topK(cands, scores, k)
}

// InherentIG implements Sec. 5.1: greedy top-K by the delta-entropy
// information gain of Eq. 6, which accounts for the incoming worker's
// quality and the cell's difficulty and is comparable across datatypes.
type InherentIG struct {
	Parallelism int
}

// Name implements Policy.
func (InherentIG) Name() string { return "Inherent IG" }

// Select implements Policy.
func (g InherentIG) Select(st *State, u tabular.WorkerID, k int) []tabular.Cell {
	cands := candidateCells(st.Model.Table, st.Log, u)
	if len(cands) == 0 {
		return nil
	}
	scores := scoreAll(cands, g.Parallelism, func(c tabular.Cell) float64 {
		return InfoGain(st.Model, u, c)
	})
	return topK(cands, scores, k)
}

// StructureIG implements Sec. 5.2: information gain with the worker's
// expected error conditioned on their observed errors in the same row
// (Eq. 7), using the attribute-correlation model. T-Crowd's default.
type StructureIG struct {
	Parallelism int
}

// Name implements Policy.
func (StructureIG) Name() string { return "Structure-Aware IG" }

// Select implements Policy.
func (g StructureIG) Select(st *State, u tabular.WorkerID, k int) []tabular.Cell {
	cands := candidateCells(st.Model.Table, st.Log, u)
	if len(cands) == 0 {
		return nil
	}
	if st.Err == nil {
		scores := scoreAll(cands, g.Parallelism, func(c tabular.Cell) float64 {
			return InfoGain(st.Model, u, c)
		})
		return topK(cands, scores, k)
	}
	// One pass over the worker's history, then O(1) row-error lookups per
	// candidate cell.
	byRow := st.Err.WorkerRowErrors(u, st.Est)
	scores := scoreAll(cands, g.Parallelism, func(c tabular.Cell) float64 {
		rowErrs := byRow[c.Row]
		if len(rowErrs) == 0 {
			return InfoGain(st.Model, u, c)
		}
		return structInfoGainWithErrors(st.Model, st.Err, u, c, rowErrs)
	})
	return topK(cands, scores, k)
}

// Policies returns the Fig. 5 heuristic line-up, all running on T-Crowd
// inference.
func Policies() []Policy {
	return []Policy{Random{}, &Looping{}, Entropy{}, InherentIG{}, StructureIG{}}
}
