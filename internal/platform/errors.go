package platform

import (
	"errors"
	"net/http"
	"sort"

	"tcrowd/api"
	"tcrowd/internal/shard"
)

// errSpec is one row of the exhaustive sentinel-error → wire-error table:
// the HTTP status, stable machine code and retryability every platform and
// shard sentinel maps to. writeErr consults this table and nothing else, so
// the wire behaviour of an error is defined in exactly one place.
type errSpec struct {
	status    int
	code      string
	retryable bool
}

// errTable maps every platform/shard sentinel error to its wire spec.
// Order matters only for documentation; classification uses errors.Is, and
// the sentinels are disjoint. Errors matching no row are client mistakes
// (validation failures, malformed bodies) and fall back to badRequestSpec.
// The directive makes tcrowd-lint fail the build if an exported Err*
// sentinel in this package has no row here (the table-driven test checks
// the rows are RIGHT; the analyzer checks none are MISSING).
//
//tcrowd:errtable
var errTable = []struct {
	err  error
	spec errSpec
}{
	{ErrNoProject, errSpec{http.StatusNotFound, api.CodeNoProject, false}},
	{ErrNoSnapshot, errSpec{http.StatusNotFound, api.CodeNoSnapshot, true}},
	{ErrGenerationGone, errSpec{http.StatusGone, api.CodeGenerationGone, false}},
	{ErrDuplicateID, errSpec{http.StatusConflict, api.CodeDuplicateProject, false}},
	{ErrAlreadyAnswered, errSpec{http.StatusConflict, api.CodeAlreadyAnswered, false}},
	{ErrDurability, errSpec{http.StatusServiceUnavailable, api.CodeDurabilityFailure, true}},
	{ErrWorkerBanned, errSpec{http.StatusForbidden, api.CodeWorkerBanned, false}},
	{ErrRateLimited, errSpec{http.StatusTooManyRequests, api.CodeRateLimited, true}},
	// 421 Misdirected Request: the request reached a node the cluster
	// ring does not make responsible for the project. Not retryable as
	// issued — the envelope's Home field says where to go instead.
	{ErrNotHome, errSpec{http.StatusMisdirectedRequest, api.CodeNotHome, false}},
	{ErrReplicaStale, errSpec{http.StatusServiceUnavailable, api.CodeReplicaStale, true}},
	{shard.ErrShardSaturated, errSpec{http.StatusTooManyRequests, api.CodeShardSaturated, true}},
	{shard.ErrClosed, errSpec{http.StatusServiceUnavailable, api.CodeShuttingDown, true}},
	{shard.ErrJobPanicked, errSpec{http.StatusInternalServerError, api.CodeInternal, false}},
}

// badRequestSpec is the fallback for errors outside the sentinel table.
var badRequestSpec = errSpec{http.StatusBadRequest, api.CodeBadRequest, false}

// classifyErr resolves an error (possibly wrapped) to its wire spec.
func classifyErr(err error) errSpec {
	for _, row := range errTable {
		if errors.Is(err, row.err) {
			return row.spec
		}
	}
	return badRequestSpec
}

// ErrorCode is one row of the public wire-error table, exposed for the
// API-drift check (cmd/tcrowd-apiroutes) and documentation tooling.
type ErrorCode struct {
	Code      string
	Status    int
	Retryable bool
}

// ErrorCodes returns the full wire-error code table: every sentinel row
// plus the bad_request fallback and the batch_rejected composite used by
// batch submission. The slice is freshly allocated and sorted by code.
func ErrorCodes() []ErrorCode {
	out := []ErrorCode{
		{api.CodeBadRequest, badRequestSpec.status, badRequestSpec.retryable},
		{api.CodeBatchRejected, http.StatusBadRequest, false},
	}
	for _, row := range errTable {
		out = append(out, ErrorCode{row.spec.code, row.spec.status, row.spec.retryable})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Code < out[j].Code })
	return out
}
