// Package reputation implements the streaming per-worker reputation engine
// behind the platform's spam defense: the online counterpart of the offline
// worker filters crowdsourcing pipelines apply between collection and
// inference (response-time outliers, majority agreement, model-estimated
// quality).
//
// # Signals
//
// Each submitted answer is folded into the engine as one Observation:
//
//   - Agreement. The engine keeps a tiny per-cell aggregate (label counts
//     for categorical cells, a Welford mean/variance for continuous ones)
//     and judges every answer against the aggregate of the answers that
//     PRECEDED it, once a cell has enough peers to have an opinion. A
//     categorical answer disagrees when it misses the prior plurality
//     label; a continuous one when it falls outside the prior answers'
//     3-sigma band. Judgements feed an exponentially-weighted disagree
//     rate, so a sleeper who turns malicious mid-stream decays toward its
//     recent behaviour instead of hiding behind an honest history.
//   - Response time. Answers carrying work_time_ms below the configured
//     floor feed an EWMA fast-answer rate — the classic fast-deceiver
//     signal. Missing work times are never penalised.
//   - Model quality. The inference layer pushes each worker's posterior
//     quality (core.Model.WorkerQuality) into the engine after every
//     refresh. Model quality only modulates the E-step weight; it is
//     deliberately excluded from the verdict fold (see below).
//
// # Graduated responses
//
// The per-worker score (disagree rate plus a discounted fast rate) drives
// a four-state machine: Active -> Watched -> Quarantined -> Banned.
// Watched and Quarantined workers keep submitting but their answers carry
// shrinking E-step weight (Weight), and Quarantined workers stop receiving
// task assignments; Banned workers get a typed 403 at the door and never
// de-escalate. Escalations gate on minimum judged-answer counts so a
// handful of early disagreements cannot ban anyone; de-escalation uses a
// hysteresis margin so workers do not flap at a threshold.
//
// # Determinism
//
// Observe is a pure left fold over the answer stream: the verdict sequence
// is a function of the answers (and their metadata) in submission order,
// independent of how the stream was batched. Everything that depends on
// refresh timing — which DOES vary with batching — is kept out of the
// fold: ObserveModelQuality only updates the weight modulation, never the
// counters or the state machine. The platform relies on this to keep
// reputation replay deterministic (see the batch-split property test).
//
//tcrowd:deterministic
package reputation

import (
	"math"
	"sort"
	"sync"

	"tcrowd/internal/tabular"
)

// State is a worker's graduated-response state. Order matters: higher
// states are more restricted.
type State int

// The enum directive makes every switch over State in this package
// exhaustive under tcrowd-lint: a new state cannot silently skip the
// transition or serialization paths.
//
//tcrowd:enum State
const (
	// Active workers are in good standing: full weight, assignable.
	Active State = iota
	// Watched workers have a suspicious signal: answers are down-weighted
	// in inference but they keep answering and receiving tasks.
	Watched
	// Quarantined workers are excluded from task assignment and their
	// answers carry a token weight, but submissions are still accepted
	// (the stream keeps feeding the verdict fold, so recovery or
	// escalation both stay possible).
	Quarantined
	// Banned workers are rejected at the API door (403 worker_banned)
	// and never de-escalate.
	Banned
)

// String implements fmt.Stringer (wire names, also used in WAL records).
func (s State) String() string {
	switch s {
	case Active:
		return "active"
	case Watched:
		return "watched"
	case Quarantined:
		return "quarantined"
	case Banned:
		return "banned"
	default:
		return "unknown"
	}
}

// Config tunes the engine. The zero value gives the defaults; every field
// only applies when positive.
type Config struct {
	// MinPeers is the number of PRIOR answers a cell needs before new
	// answers are judged against it (default 2).
	MinPeers int
	// MinWorkTimeMs flags answers reported faster than this as
	// suspiciously fast (default 500).
	MinWorkTimeMs int64
	// Decay is the EWMA retention of the disagree/fast rates per judged
	// answer (default 0.93): ~15 recent judgements dominate, so sleepers
	// surface within a few tasks of turning.
	Decay float64
	// FastWeight discounts the fast-rate's contribution to the score
	// (default 0.55): speed alone can watch-list a worker (0.55 clears
	// WatchScore) but never quarantines or bans one without disagreement
	// evidence.
	FastWeight float64
	// WatchAfter/QuarantineAfter/BanAfter gate each escalation on a
	// minimum number of judged answers (defaults 8/16/24).
	WatchAfter, QuarantineAfter, BanAfter int
	// WatchScore/QuarantineScore/BanScore are the score thresholds of the
	// escalations (defaults 0.50/0.65/0.80). De-escalation applies a 0.1
	// hysteresis margin below the corresponding threshold.
	WatchScore, QuarantineScore, BanScore float64
}

func (c Config) withDefaults() Config {
	if c.MinPeers <= 0 {
		c.MinPeers = 2
	}
	if c.MinWorkTimeMs <= 0 {
		c.MinWorkTimeMs = 500
	}
	if c.Decay <= 0 || c.Decay >= 1 {
		c.Decay = 0.93
	}
	if c.FastWeight <= 0 {
		c.FastWeight = 0.55
	}
	if c.WatchAfter <= 0 {
		c.WatchAfter = 8
	}
	if c.QuarantineAfter <= 0 {
		c.QuarantineAfter = 16
	}
	if c.BanAfter <= 0 {
		c.BanAfter = 24
	}
	if c.WatchScore <= 0 {
		c.WatchScore = 0.50
	}
	if c.QuarantineScore <= 0 {
		c.QuarantineScore = 0.65
	}
	if c.BanScore <= 0 {
		c.BanScore = 0.80
	}
	return c
}

// hysteresis is the score margin below a threshold required before a
// worker de-escalates out of the state that threshold guards.
const hysteresis = 0.1

// Observation is one answer entering the fold, with its wire metadata.
type Observation struct {
	Answer tabular.Answer
	// WorkTimeMs is the client-reported time spent on the task; 0 means
	// not reported (the time signal is skipped, never penalised).
	WorkTimeMs int64
}

// Verdict records one state transition of the fold.
type Verdict struct {
	Worker tabular.WorkerID
	From   State
	To     State
	// Judged is the worker's judged-answer count at the transition.
	Judged int
	// Score is the worker's reputation score at the transition.
	Score float64
}

// WorkerSnapshot is a worker's complete fold state, serialisable into WAL
// reputation records and checkpoints.
type WorkerSnapshot struct {
	Worker       tabular.WorkerID `json:"worker"`
	State        State            `json:"state"`
	Seen         int              `json:"seen"`
	Judged       int              `json:"judged"`
	Disagreed    int              `json:"disagreed"`
	Timed        int              `json:"timed"`
	Fast         int              `json:"fast"`
	DisagreeRate float64          `json:"disagree_rate"`
	FastRate     float64          `json:"fast_rate"`
	ModelQ       float64          `json:"model_q,omitempty"`
}

type workerState struct {
	state        State
	seen         int // answers observed
	judged       int // answers with an agreement judgement
	disagreed    int
	timed        int // answers carrying a work time
	fast         int
	disagreeRate float64
	fastRate     float64
	modelQ       float64 // last model-posted quality; 0 = none yet
}

// cellAgg is the running aggregate a cell's later answers are judged
// against. Categorical cells count labels; continuous cells keep a Welford
// mean/variance of the raw values.
type cellAgg struct {
	counts   []int // categorical label counts (grown on demand)
	n        int
	mean, m2 float64
}

// plurality returns the most-voted label (ties to the smaller index).
func (c *cellAgg) plurality() int {
	best, bestN := -1, 0
	for l, n := range c.counts {
		if n > bestN {
			best, bestN = l, n
		}
	}
	return best
}

// Engine is the streaming reputation fold. Safe for concurrent use.
type Engine struct {
	mu  sync.Mutex
	cfg Config
	//tcrowd:guardedby mu
	workers map[tabular.WorkerID]*workerState
	//tcrowd:guardedby mu
	cells map[tabular.Cell]*cellAgg
}

// NewEngine returns an empty engine with cfg's thresholds (zero fields
// take the documented defaults).
func NewEngine(cfg Config) *Engine {
	return &Engine{
		cfg:     cfg.withDefaults(),
		workers: make(map[tabular.WorkerID]*workerState),
		cells:   make(map[tabular.Cell]*cellAgg),
	}
}

// Config returns the engine's resolved configuration.
func (e *Engine) Config() Config { return e.cfg }

// Observe folds one answer into the engine and reports the worker's state
// transition, if this answer caused one. Call in answer-stream order; the
// verdict sequence depends only on that order, not on batching.
func (e *Engine) Observe(o Observation) (Verdict, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()

	u := o.Answer.Worker
	w := e.workers[u]
	if w == nil {
		w = &workerState{}
		e.workers[u] = w
	}
	w.seen++

	// Agreement: judge against the cell's PRIOR aggregate, then fold the
	// answer in regardless of who sent it — spam in the baseline is the
	// price of judging online; the plurality washes it out.
	cell := e.cells[o.Answer.Cell]
	if cell == nil {
		cell = &cellAgg{}
		e.cells[o.Answer.Cell] = cell
	}
	if cell.n >= e.cfg.MinPeers {
		disagree := false
		switch o.Answer.Value.Kind {
		case tabular.Label:
			disagree = o.Answer.Value.L != cell.plurality()
		case tabular.Number:
			sd := 0.0
			if cell.n > 1 {
				sd = math.Sqrt(cell.m2 / float64(cell.n-1))
			}
			// The tolerance band floors at 5% of the mean's magnitude so
			// a degenerate (all-identical) baseline doesn't flag honest
			// jitter.
			tol := 3*sd + 0.05*(math.Abs(cell.mean)+1)
			disagree = math.Abs(o.Answer.Value.X-cell.mean) > tol
		case tabular.None:
			// Kind-less answers are rejected upstream by validation; an
			// empty value that slips through is never held against the
			// worker.
		}
		w.judged++
		ind := 0.0
		if disagree {
			w.disagreed++
			ind = 1
		}
		w.disagreeRate = e.cfg.Decay*w.disagreeRate + (1-e.cfg.Decay)*ind
	}
	e.foldCell(cell, o.Answer.Value)

	// Response time: only judged when reported.
	if o.WorkTimeMs > 0 {
		w.timed++
		ind := 0.0
		if o.WorkTimeMs < e.cfg.MinWorkTimeMs {
			w.fast++
			ind = 1
		}
		w.fastRate = e.cfg.Decay*w.fastRate + (1-e.cfg.Decay)*ind
	}

	from := w.state
	w.state = e.nextState(w)
	if w.state != from {
		return Verdict{Worker: u, From: from, To: w.state, Judged: w.judged, Score: e.score(w)}, true
	}
	return Verdict{}, false
}

func (e *Engine) foldCell(c *cellAgg, v tabular.Value) {
	switch v.Kind {
	case tabular.Label:
		for len(c.counts) <= v.L {
			c.counts = append(c.counts, 0)
		}
		c.counts[v.L]++
		c.n++
	case tabular.Number:
		c.n++
		d := v.X - c.mean
		c.mean += d / float64(c.n)
		c.m2 += d * (v.X - c.mean)
	case tabular.None:
		// An empty value carries no information; folding it in would only
		// inflate n and dilute the plurality baseline.
	}
}

// score combines the EWMA rates: full-strength disagreement plus
// discounted speed, clamped to 1.
func (e *Engine) score(w *workerState) float64 {
	s := w.disagreeRate + e.cfg.FastWeight*w.fastRate
	return math.Min(s, 1)
}

// nextState runs the graduated-response machine: escalations gate on the
// judged-answer floors, de-escalations need the hysteresis margin, bans
// are sticky.
func (e *Engine) nextState(w *workerState) State {
	if w.state == Banned {
		return Banned
	}
	s := e.score(w)
	switch {
	case w.judged >= e.cfg.BanAfter && s >= e.cfg.BanScore:
		return Banned
	case w.judged >= e.cfg.QuarantineAfter && s >= e.cfg.QuarantineScore:
		return Quarantined
	case w.judged >= e.cfg.WatchAfter && s >= e.cfg.WatchScore:
		if w.state < Watched {
			return Watched
		}
		return w.state
	}
	// Below every escalation threshold: step down one state at a time
	// once the score clears the hysteresis margin.
	switch w.state {
	case Quarantined:
		if s < e.cfg.QuarantineScore-hysteresis {
			return Watched
		}
	case Watched:
		if s < e.cfg.WatchScore-hysteresis {
			return Active
		}
	case Active, Banned:
		// Active has nowhere to step down to, and bans are sticky — the
		// early return above means Banned never reaches this switch.
	}
	return w.state
}

// ObserveModelQuality records worker u's model-posterior quality (in
// [0, 1], from core.Model.WorkerQuality). It modulates Weight only — by
// design it never touches the counters or the state machine, so refresh
// timing cannot perturb the verdict sequence.
func (e *Engine) ObserveModelQuality(u tabular.WorkerID, q float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	w := e.workers[u]
	if w == nil {
		w = &workerState{}
		e.workers[u] = w
	}
	w.modelQ = q
}

// stateWeight is the E-step multiplier of each state before model-quality
// modulation.
func stateWeight(s State) float64 {
	switch s {
	case Active:
		return 1
	case Watched:
		return 0.35
	case Quarantined:
		return 0.05
	case Banned:
		return 0
	}
	// Out-of-range states (a corrupt checkpoint snapshot) carry no weight.
	return 0
}

// Weight returns worker u's E-step likelihood multiplier: the state weight
// scaled down further when the model itself estimates the worker below
// coin-flip quality. Unknown workers weigh 1.
func (e *Engine) Weight(u tabular.WorkerID) float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	w := e.workers[u]
	if w == nil {
		return 1
	}
	return e.weightLocked(w)
}

func (e *Engine) weightLocked(w *workerState) float64 {
	wt := stateWeight(w.state)
	if wt == 0 {
		return 0
	}
	if q := w.modelQ; q > 0 && q < 0.5 {
		// A model-certified poor worker shrinks further, floored so the
		// model keeps enough signal to revise its own estimate.
		wt *= math.Max(2*q, 0.1)
	}
	return wt
}

// Weights returns the non-unit E-step multipliers, ready for
// core.Model.SetWorkerWeights (nil when every worker is at full weight).
func (e *Engine) Weights() map[tabular.WorkerID]float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out map[tabular.WorkerID]float64
	for u, w := range e.workers {
		if wt := e.weightLocked(w); wt != 1 {
			if out == nil {
				out = make(map[tabular.WorkerID]float64)
			}
			out[u] = wt
		}
	}
	return out
}

// State returns worker u's current state (Active for unknown workers).
func (e *Engine) State(u tabular.WorkerID) State {
	e.mu.Lock()
	defer e.mu.Unlock()
	if w := e.workers[u]; w != nil {
		return w.state
	}
	return Active
}

// Assignable reports whether worker u should receive task assignments
// (Active or Watched).
func (e *Engine) Assignable(u tabular.WorkerID) bool {
	return e.State(u) < Quarantined
}

// SnapshotOf returns worker u's fold state (zero snapshot for unknown
// workers).
func (e *Engine) SnapshotOf(u tabular.WorkerID) WorkerSnapshot {
	e.mu.Lock()
	defer e.mu.Unlock()
	if w := e.workers[u]; w != nil {
		return snap(u, w)
	}
	return WorkerSnapshot{Worker: u}
}

// Snapshot returns every worker's fold state, sorted by worker ID for
// deterministic serialisation (checkpoints, /v1 listings).
func (e *Engine) Snapshot() []WorkerSnapshot {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]WorkerSnapshot, 0, len(e.workers))
	for u, w := range e.workers {
		//lint:allow detfold collection order is irrelevant: the slice is sorted by worker ID immediately below
		out = append(out, snap(u, w))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Worker < out[j].Worker })
	return out
}

// Score returns worker u's current reputation score (0 for unknown
// workers).
func (e *Engine) Score(u tabular.WorkerID) float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if w := e.workers[u]; w != nil {
		return e.score(w)
	}
	return 0
}

func snap(u tabular.WorkerID, w *workerState) WorkerSnapshot {
	return WorkerSnapshot{
		Worker:       u,
		State:        w.state,
		Seen:         w.seen,
		Judged:       w.judged,
		Disagreed:    w.disagreed,
		Timed:        w.timed,
		Fast:         w.fast,
		DisagreeRate: w.disagreeRate,
		FastRate:     w.fastRate,
		ModelQ:       w.modelQ,
	}
}

// Restore overwrites the given workers' fold states from snapshots (WAL
// replay: reputation records carry the authoritative state at their stream
// position). Cell aggregates are not part of snapshots — they rebuild from
// the replayed answers, so post-recovery agreement baselines restart from
// the checkpoint while worker counters and states are exact.
func (e *Engine) Restore(snaps []WorkerSnapshot) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, s := range snaps {
		e.workers[s.Worker] = &workerState{
			state:        s.State,
			seen:         s.Seen,
			judged:       s.Judged,
			disagreed:    s.Disagreed,
			timed:        s.Timed,
			fast:         s.Fast,
			disagreeRate: s.DisagreeRate,
			fastRate:     s.FastRate,
			modelQ:       s.ModelQ,
		}
	}
}
