// Package core implements the paper's primary contribution (Sec. 4): the
// unified probabilistic worker-quality model for tabular data and the EM
// truth-inference algorithm built on it.
//
// Model recap. Worker u has one inherent variance phi_u; cell c_ij has
// difficulty alpha_i * beta_j; the effective answer variance on c_ij is
// s = alpha_i * beta_j * phi_u. A continuous answer is drawn N(T_ij, s)
// (Eq. 1); a categorical answer is correct with probability
// q = erf(eps / sqrt(2 s)) and otherwise uniform over the wrong labels
// (Eqs. 2-3). EM alternates the E-step (per-cell posterior truth
// distributions, Eq. 4) with an M-step that maximises the expected joint
// log-likelihood Q (Eq. 5) by gradient ascent over log-parameters.
//
// Implementation notes (documented deviations, see DESIGN.md):
//
//   - Continuous columns are z-scored by their answers' mean/std before
//     inference so one phi_u is commensurable across columns; estimates are
//     mapped back to natural units on output.
//   - alpha_i * beta_j * phi_u is scale-ambiguous, so after each M-step
//     alpha and beta are renormalised to geometric mean 1 (folding the
//     scale into phi). Likelihoods are invariant under this.
//   - Posteriors are warm-started from the empirical answer distribution
//     (the standard majority-vote/mean start for crowdsourcing EM) rather
//     than from the flat prior, which would make the first M-step
//     uninformative.
package core

import (
	"errors"
	"fmt"
	"math"

	"tcrowd/internal/stats"
	"tcrowd/internal/tabular"
)

// Mode selects which datatypes participate in inference. The constrained
// modes are the paper's TC-onlyCate / TC-onlyCont baselines (Table 7).
type Mode int

const (
	// ModeFull uses every column (T-Crowd proper).
	ModeFull Mode = iota
	// ModeOnlyCategorical ignores continuous columns (TC-onlyCate).
	ModeOnlyCategorical
	// ModeOnlyContinuous ignores categorical columns (TC-onlyCont).
	ModeOnlyContinuous
)

// Options configures Infer. The zero value gives the paper's defaults.
type Options struct {
	// Eps is the quality window of Eq. 2, in standardized units
	// (default 0.5).
	Eps float64
	// MaxIter bounds EM iterations (default 50; the paper observes
	// convergence within ~20).
	MaxIter int
	// Tol is the convergence threshold on the maximum absolute parameter
	// change between iterations (default 1e-5, as in Sec. 4.3).
	Tol float64
	// MStepIter bounds gradient-ascent steps per M-step (default 20).
	MStepIter int
	// Mode restricts the datatypes used (default ModeFull).
	Mode Mode
	// FixDifficulty freezes alpha_i = beta_j = 1, reducing the model to
	// worker-only quality. Used by the difficulty ablation.
	FixDifficulty bool
	// TrackObjective records the ELBO after every EM iteration
	// (regenerates Fig. 12a).
	TrackObjective bool
	// InitPhi is the initial worker variance (default 0.2).
	InitPhi float64
	// PhiPriorA/PhiPriorB parameterise a weak inverse-gamma prior on each
	// phi_u (defaults 1.0 and 0.4, putting the prior mode at 0.2). The
	// paper's pure MLE degenerates on sparse workers (phi -> 0 for a
	// worker whose few answers all match the posterior); the weak prior is
	// the standard MAP-EM stabilisation and washes out once a worker has
	// tens of answers.
	PhiPriorA, PhiPriorB float64
	// DiffPriorSigma is the std of the N(0, sigma^2) shrinkage prior on
	// ln(alpha_i) and ln(beta_j) (default 0.5), keeping difficulties
	// modest multiplicative modulations around 1 and anchoring the scale
	// of the otherwise scale-ambiguous product alpha*beta*phi.
	DiffPriorSigma float64
	// Warm seeds the parameters from a previous fit, the standard trick
	// for online re-inference after a handful of new answers: the EM
	// restarts next to its previous optimum and converges in a few
	// iterations.
	Warm *Warm
	// Parallelism shards the E-step over cells and the M-step
	// objective/gradient over answers when > 1 (capped at GOMAXPROCS).
	// The paper lists parallel truth inference as future work (Sec. 7);
	// results are identical up to floating-point summation order.
	Parallelism int
}

// Warm carries parameters from a previous fit for warm-started EM.
type Warm struct {
	// Alpha and Beta must match the table dimensions to be used.
	Alpha, Beta []float64
	// Phi maps workers to their previous variance; unknown workers keep
	// InitPhi.
	Phi map[tabular.WorkerID]float64
}

func (o Options) withDefaults() Options {
	if o.Eps <= 0 {
		o.Eps = 0.5
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 50
	}
	if o.Tol <= 0 {
		o.Tol = 1e-5
	}
	if o.MStepIter <= 0 {
		o.MStepIter = 20
	}
	if o.InitPhi <= 0 {
		o.InitPhi = 0.2
	}
	if o.PhiPriorA <= 0 {
		o.PhiPriorA = 1.0
	}
	if o.PhiPriorB <= 0 {
		o.PhiPriorB = 0.4
	}
	if o.DiffPriorSigma <= 0 {
		o.DiffPriorSigma = 0.5
	}
	return o
}

// Model is the fitted state of T-Crowd truth inference: per-cell posterior
// truth distributions plus the learned difficulties and worker variances.
// It also serves the task-assignment layer, which needs posteriors,
// per-cell worker qualities and cheap single-cell updates.
type Model struct {
	Table *tabular.Table
	Log   *tabular.AnswerLog
	Opts  Options

	// Alpha[i], Beta[j] are row/column difficulties; Phi[k] is the
	// variance of the k-th worker in WorkerIDs order.
	Alpha, Beta []float64
	Phi         []float64
	WorkerIDs   []tabular.WorkerID
	workerIdx   map[tabular.WorkerID]int

	// ColMean/ColStd are the per-column standardisation constants
	// (answer mean and std; std==1, mean==0 for categorical columns).
	ColMean, ColStd []float64

	// CatPost[i][j] is the posterior label distribution of a categorical
	// cell (nil when not applicable or unanswered).
	CatPost [][][]float64
	// ContMu/ContVar hold the standardized posterior N(mu, var) of
	// continuous cells (valid where Answered).
	ContMu, ContVar [][]float64
	// Answered marks cells with at least one usable answer.
	Answered [][]bool

	// ObjTrace is the ELBO per EM iteration when TrackObjective is set.
	ObjTrace []float64
	// Iterations is the number of EM iterations performed.
	Iterations int
	// Converged reports whether the parameter-change tolerance fired.
	Converged bool

	// flat per-answer caches built once in newModel.
	ans []obsAnswer
	// byCell[i*M+j] lists indices into ans for cell (i,j).
	byCell [][]int
	// medianPhi caches MedianPhi across hot assignment loops.
	medianPhi float64
}

// obsAnswer is a decoded answer: indices resolved, continuous values
// standardized.
type obsAnswer struct {
	w, i, j int
	isCat   bool
	label   int
	z       float64
}

// ErrNoAnswers is returned when the log has no usable answers for the
// requested mode.
var ErrNoAnswers = errors.New("core: no usable answers")

// Infer runs T-Crowd truth inference (Algorithm 1) and returns the fitted
// model.
func Infer(tbl *tabular.Table, log *tabular.AnswerLog, opts Options) (*Model, error) {
	m, err := newModel(tbl, log, opts)
	if err != nil {
		return nil, err
	}
	m.run()
	return m, nil
}

func newModel(tbl *tabular.Table, log *tabular.AnswerLog, opts Options) (*Model, error) {
	if err := tbl.Schema.Validate(); err != nil {
		return nil, err
	}
	o := opts.withDefaults()
	n, mm := tbl.NumRows(), tbl.NumCols()

	m := &Model{
		Table:     tbl,
		Log:       log,
		Opts:      o,
		Alpha:     ones(n),
		Beta:      ones(mm),
		ColMean:   make([]float64, mm),
		ColStd:    make([]float64, mm),
		CatPost:   make([][][]float64, n),
		ContMu:    make([][]float64, n),
		ContVar:   make([][]float64, n),
		Answered:  make([][]bool, n),
		workerIdx: make(map[tabular.WorkerID]int),
	}
	for i := 0; i < n; i++ {
		m.CatPost[i] = make([][]float64, mm)
		m.ContMu[i] = make([]float64, mm)
		m.ContVar[i] = make([]float64, mm)
		m.Answered[i] = make([]bool, mm)
	}

	// Column standardisation constants from the answers.
	perCol := make([][]float64, mm)
	for _, a := range log.All() {
		if a.Value.Kind == tabular.Number {
			perCol[a.Cell.Col] = append(perCol[a.Cell.Col], a.Value.X)
		}
	}
	for j := 0; j < mm; j++ {
		m.ColStd[j] = 1
		if tbl.Schema.Columns[j].Type == tabular.Continuous && len(perCol[j]) > 0 {
			mean, v := stats.MeanVariance(perCol[j])
			m.ColMean[j] = mean
			if v > 1e-12 {
				m.ColStd[j] = math.Sqrt(v)
			}
		}
	}

	// Decode answers, applying the mode filter.
	for _, a := range log.All() {
		if a.Cell.Row < 0 || a.Cell.Row >= n || a.Cell.Col < 0 || a.Cell.Col >= mm {
			return nil, fmt.Errorf("core: answer cell %v outside table", a.Cell)
		}
		col := tbl.Schema.Columns[a.Cell.Col]
		isCat := col.Type == tabular.Categorical
		if isCat && o.Mode == ModeOnlyContinuous {
			continue
		}
		if !isCat && o.Mode == ModeOnlyCategorical {
			continue
		}
		k, ok := m.workerIdx[a.Worker]
		if !ok {
			k = len(m.WorkerIDs)
			m.workerIdx[a.Worker] = k
			m.WorkerIDs = append(m.WorkerIDs, a.Worker)
		}
		oa := obsAnswer{w: k, i: a.Cell.Row, j: a.Cell.Col, isCat: isCat}
		if isCat {
			if a.Value.Kind != tabular.Label {
				return nil, fmt.Errorf("core: non-label answer in categorical column %q", col.Name)
			}
			oa.label = a.Value.L
		} else {
			if a.Value.Kind != tabular.Number {
				return nil, fmt.Errorf("core: non-number answer in continuous column %q", col.Name)
			}
			oa.z = stats.Standardize(a.Value.X, m.ColMean[a.Cell.Col], m.ColStd[a.Cell.Col])
		}
		m.ans = append(m.ans, oa)
		m.Answered[a.Cell.Row][a.Cell.Col] = true
	}
	if len(m.ans) == 0 {
		return nil, ErrNoAnswers
	}
	m.byCell = make([][]int, n*mm)
	for idx, a := range m.ans {
		key := a.i*mm + a.j
		m.byCell[key] = append(m.byCell[key], idx)
	}
	m.Phi = make([]float64, len(m.WorkerIDs))
	for k := range m.Phi {
		m.Phi[k] = o.InitPhi
	}
	if w := o.Warm; w != nil {
		if len(w.Alpha) == n && !o.FixDifficulty {
			copy(m.Alpha, w.Alpha)
		}
		if len(w.Beta) == mm && !o.FixDifficulty {
			copy(m.Beta, w.Beta)
		}
		for k, u := range m.WorkerIDs {
			if phi, ok := w.Phi[u]; ok && phi > 0 {
				m.Phi[k] = stats.Clamp(phi, minS, maxS)
			}
		}
	}
	m.warmStart()
	return m, nil
}

// warmStart seeds posteriors from the empirical answer distribution
// (equal-weight vote / mean), the conventional EM initialisation.
func (m *Model) warmStart() {
	n, mm := m.Table.NumRows(), m.Table.NumCols()
	counts := make([][][]float64, n)
	sum := make([][]float64, n)
	cnt := make([][]int, n)
	for i := 0; i < n; i++ {
		counts[i] = make([][]float64, mm)
		sum[i] = make([]float64, mm)
		cnt[i] = make([]int, mm)
	}
	for _, a := range m.ans {
		if a.isCat {
			if counts[a.i][a.j] == nil {
				counts[a.i][a.j] = make([]float64, m.Table.Schema.Columns[a.j].NumLabels())
			}
			counts[a.i][a.j][a.label]++
		} else {
			sum[a.i][a.j] += a.z
			cnt[a.i][a.j]++
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < mm; j++ {
			if !m.Answered[i][j] {
				continue
			}
			if counts[i][j] != nil {
				// Add-one smoothing keeps every label alive for the first
				// M-step.
				k := len(counts[i][j])
				post := make([]float64, k)
				total := 0.0
				for z := range post {
					post[z] = counts[i][j][z] + 0.5
					total += post[z]
				}
				for z := range post {
					post[z] /= total
				}
				m.CatPost[i][j] = post
			} else if cnt[i][j] > 0 {
				m.ContMu[i][j] = sum[i][j] / float64(cnt[i][j])
				m.ContVar[i][j] = 1 / float64(cnt[i][j])
			}
		}
	}
}

// run executes the EM loop: M-step (worker quality + cell difficulty), then
// E-step (truth posteriors), until parameters stabilise (Algorithm 1).
func (m *Model) run() {
	if m.Opts.Warm != nil {
		// Warm parameters beat vote-share posteriors: refresh the
		// posteriors from them before the first M-step.
		m.eStep()
	}
	prev := m.paramSnapshot()
	for it := 0; it < m.Opts.MaxIter; it++ {
		m.Iterations = it + 1
		m.mStep()
		m.eStep()
		if m.Opts.TrackObjective {
			m.ObjTrace = append(m.ObjTrace, m.ELBO())
		}
		cur := m.paramSnapshot()
		if maxDelta(prev, cur) < m.Opts.Tol {
			m.Converged = true
			break
		}
		prev = cur
	}
	// Freeze the median-phi cache now so concurrent readers (parallel
	// assignment scoring) never write to the model.
	m.medianPhi = m.MedianPhi()
}

func (m *Model) paramSnapshot() []float64 {
	out := make([]float64, 0, len(m.Alpha)+len(m.Beta)+len(m.Phi))
	out = append(out, m.Alpha...)
	out = append(out, m.Beta...)
	out = append(out, m.Phi...)
	return out
}

func maxDelta(a, b []float64) float64 {
	d := 0.0
	for i := range a {
		if v := math.Abs(a[i] - b[i]); v > d {
			d = v
		}
	}
	return d
}

func ones(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 1
	}
	return out
}
