package baselines

import (
	"tcrowd/internal/core"
	"tcrowd/internal/metrics"
	"tcrowd/internal/tabular"
)

// TCrowd adapts the core model (Sec. 4) to the Method interface so the
// experiment harnesses can sweep it alongside the baselines.
type TCrowd struct {
	// Opts forwards to core.Infer; the zero value is the paper's defaults.
	Opts core.Options
}

// Name implements Method.
func (TCrowd) Name() string { return "T-Crowd" }

// Infer implements Method.
func (t TCrowd) Infer(tbl *tabular.Table, log *tabular.AnswerLog) (metrics.Estimates, error) {
	m, err := core.Infer(tbl, log, t.Opts)
	if err == core.ErrNoAnswers {
		return metrics.NewEstimates(tbl), nil
	}
	if err != nil {
		return nil, err
	}
	return m.Estimates(), nil
}

// TCOnlyCate is T-Crowd constrained to categorical attributes (Table 7's
// TC-onlyCate row).
type TCOnlyCate struct {
	Opts core.Options
}

// Name implements Method.
func (TCOnlyCate) Name() string { return "TC-onlyCate" }

// Infer implements Method.
func (t TCOnlyCate) Infer(tbl *tabular.Table, log *tabular.AnswerLog) (metrics.Estimates, error) {
	opts := t.Opts
	opts.Mode = core.ModeOnlyCategorical
	m, err := core.Infer(tbl, log, opts)
	if err == core.ErrNoAnswers {
		return metrics.NewEstimates(tbl), nil
	}
	if err != nil {
		return nil, err
	}
	return m.Estimates(), nil
}

// TCOnlyCont is T-Crowd constrained to continuous attributes (Table 7's
// TC-onlyCont row).
type TCOnlyCont struct {
	Opts core.Options
}

// Name implements Method.
func (TCOnlyCont) Name() string { return "TC-onlyCont" }

// Infer implements Method.
func (t TCOnlyCont) Infer(tbl *tabular.Table, log *tabular.AnswerLog) (metrics.Estimates, error) {
	opts := t.Opts
	opts.Mode = core.ModeOnlyContinuous
	m, err := core.Infer(tbl, log, opts)
	if err == core.ErrNoAnswers {
		return metrics.NewEstimates(tbl), nil
	}
	if err != nil {
		return nil, err
	}
	return m.Estimates(), nil
}
