// Package client is the official Go SDK for the tcrowd-server /v1 wire
// API (package api defines the shared types). It supports contexts on
// every call, surfaces server errors as typed *APIError values mirroring
// the error envelope, honours Retry-After backoff automatically on 429
// responses, and offers batch submission helpers.
//
//	c := client.New("http://127.0.0.1:8080")
//	err := c.CreateProject(ctx, api.CreateProjectRequest{ID: "books", ...})
//	tasks, err := c.Tasks(ctx, "books", "w1", 4)
//	res, err := c.SubmitAnswers(ctx, "books", batch) // one POST, one refresh
//	est, err := c.AllEstimates(ctx, "books", 10_000, client.EstimatesQuery{})
//
// Reads are generation-pinned: every EstimatesResponse names the published
// model Generation it serves, pagination cursors re-encode it (so a paged
// walk never spans model states — AllEstimates needs no retries), pollers
// skip unchanged downloads with EstimatesQuery.IfNotGeneration /
// ErrNotModified, and Watch/WatchStream push generation bumps instead of
// polling at all.
//
// Error handling dispatches on the stable machine code:
//
//	var ae *client.APIError
//	if errors.As(err, &ae) && ae.Code == api.CodeAlreadyAnswered { ... }
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"tcrowd/api"
)

// ErrNotModified is returned by Estimates when the server answered 304:
// the model is still at EstimatesQuery.IfNotGeneration, so there is
// nothing new to download.
var ErrNotModified = errors.New("tcrowd: not modified")

// Client talks to one tcrowd-server. It is safe for concurrent use.
type Client struct {
	base       string
	hc         *http.Client
	maxRetries int
	maxWait    time.Duration
}

// Option configures New.
type Option func(*Client)

// WithHTTPClient replaces the underlying *http.Client (timeouts,
// transports, instrumentation). A Timeout set here applies to the
// request/response calls only: the streaming paths (Watch, WatchStream)
// reuse the transport but strip the overall Timeout, bounding themselves
// with contexts instead — otherwise a parked long-poll or an idle SSE
// stream would be killed mid-flight.
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithMaxRetries sets how many times a retryable 429 is retried after
// honouring its Retry-After delay (default 3; 0 disables backoff).
func WithMaxRetries(n int) Option { return func(c *Client) { c.maxRetries = n } }

// WithMaxRetryWait caps a single Retry-After sleep (default 5s), guarding
// against a server asking for pathological delays.
func WithMaxRetryWait(d time.Duration) Option { return func(c *Client) { c.maxWait = d } }

// New returns a client for the server at baseURL (e.g.
// "http://127.0.0.1:8080"); a trailing slash is trimmed.
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base:       trimSlash(baseURL),
		hc:         http.DefaultClient,
		maxRetries: 3,
		maxWait:    5 * time.Second,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

func trimSlash(s string) string {
	for len(s) > 0 && s[len(s)-1] == '/' {
		s = s[:len(s)-1]
	}
	return s
}

// streamHC returns the configured client minus its overall Timeout: a
// request/response deadline is right for the short-lived calls but would
// kill a long-poll parked at the server (by design up to 125s) or an SSE
// stream (unbounded) mid-flight. The streaming paths bound themselves
// with contexts instead; the transport (proxies, TLS config,
// instrumentation) is preserved.
func (c *Client) streamHC() *http.Client {
	if c.hc.Timeout == 0 {
		return c.hc
	}
	hc := *c.hc
	hc.Timeout = 0
	return &hc
}

// APIError is a non-2xx server response, decoded from the typed error
// envelope. Responses without a parseable envelope (proxies, panics)
// yield Code api.CodeBadRequest with the raw body as Message.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Code is the stable machine-readable error code (api.Code*).
	Code string
	// Message is the human-readable detail.
	Message string
	// Retryable mirrors the envelope's retryable flag.
	Retryable bool
	// Items carries per-answer failures for api.CodeBatchRejected.
	Items []api.ItemError
	// RetryAfter is the server's Retry-After hint (0 when absent).
	RetryAfter time.Duration
	// Home is the project's home node base URL, set on api.CodeNotHome
	// (421) responses from a cluster node that does not own the project.
	// The client follows it automatically; it is surfaced for callers that
	// want to re-point themselves at the home node for future requests.
	Home string
}

// Error implements the error interface.
func (e *APIError) Error() string {
	return fmt.Sprintf("tcrowd: %d %s: %s", e.Status, e.Code, e.Message)
}

// maxHomeFollows bounds how many 421 not_home referrals one logical call
// follows — enough for one stale hop plus the fresh answer, while a
// misconfigured cluster bouncing a project between nodes fails fast
// instead of looping.
const maxHomeFollows = 2

// do issues one request (with 429 backoff) and decodes a 2xx body into
// out (skipped when out is nil). hdr carries extra request headers (nil
// for none); a 304 response surfaces as ErrNotModified. A 421 not_home
// from a cluster node is followed transparently to the home node named in
// the envelope.
func (c *Client) do(ctx context.Context, method, path string, hdr http.Header, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("tcrowd: encoding request: %w", err)
		}
	}
	base := c.base
	follows := 0
	for attempt := 0; ; attempt++ {
		err := c.doOnce(ctx, method, base+path, hdr, body, out)
		ae, ok := err.(*APIError)
		if ok && ae.Code == api.CodeNotHome && ae.Home != "" && follows < maxHomeFollows {
			follows++
			base = trimSlash(ae.Home)
			continue
		}
		if !ok || !ae.Retryable || ae.Status != http.StatusTooManyRequests || attempt >= c.maxRetries {
			return err
		}
		wait := ae.RetryAfter
		if wait <= 0 {
			wait = time.Second
		}
		if wait > c.maxWait {
			wait = c.maxWait
		}
		t := time.NewTimer(wait)
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
	}
}

func (c *Client) doOnce(ctx context.Context, method, url string, hdr http.Header, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return err
	}
	for k, vs := range hdr {
		req.Header[k] = vs
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotModified {
		return ErrNotModified
	}
	if resp.StatusCode >= 300 {
		return decodeErr(resp)
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// decodeErr builds the *APIError for a non-2xx response.
func decodeErr(resp *http.Response) error {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	ae := &APIError{Status: resp.StatusCode}
	var env api.ErrorEnvelope
	if json.Unmarshal(raw, &env) == nil && env.Err.Code != "" {
		ae.Code = env.Err.Code
		ae.Message = env.Err.Message
		ae.Retryable = env.Err.Retryable
		ae.Items = env.Err.Items
		ae.Home = env.Err.Home
	} else {
		ae.Code = api.CodeBadRequest
		ae.Message = string(raw)
	}
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs >= 0 {
			ae.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return ae
}

// CreateProject registers a new campaign.
func (c *Client) CreateProject(ctx context.Context, req api.CreateProjectRequest) error {
	return c.do(ctx, http.MethodPost, "/v1/projects", nil, req, nil)
}

// DeleteProject permanently removes a project and its durable answer
// log. The delete is crash-safe on the server but irreversible: answers
// are paid human work, so export anything that matters first.
func (c *Client) DeleteProject(ctx context.Context, project string) error {
	return c.do(ctx, http.MethodDelete, "/v1/projects/"+url.PathEscape(project), nil, nil, nil)
}

// Projects lists registered project ids, sorted.
func (c *Client) Projects(ctx context.Context) ([]string, error) {
	var ids []string
	err := c.do(ctx, http.MethodGet, "/v1/projects", nil, nil, &ids)
	return ids, err
}

// Tasks requests up to count dynamically assigned cells for worker
// (count 0 = server default: one per column).
func (c *Client) Tasks(ctx context.Context, project, worker string, count int) ([]api.Task, error) {
	q := url.Values{"worker": {worker}}
	if count > 0 {
		q.Set("count", strconv.Itoa(count))
	}
	var tasks []api.Task
	err := c.do(ctx, http.MethodGet, "/v1/projects/"+url.PathEscape(project)+"/tasks?"+q.Encode(), nil, nil, &tasks)
	return tasks, err
}

// SubmitAnswer records a single answer.
func (c *Client) SubmitAnswer(ctx context.Context, project string, a api.Answer) (*api.SubmitAnswersResponse, error) {
	var out api.SubmitAnswersResponse
	err := c.do(ctx, http.MethodPost, "/v1/projects/"+url.PathEscape(project)+"/answers",
		nil, api.SubmitAnswersRequest{Answer: a}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// SubmitAnswers records a batch atomically in one round trip: all answers
// are validated up front (an *APIError with Code api.CodeBatchRejected and
// per-item detail reports every invalid row, and nothing is recorded), and
// an accepted batch enqueues at most one coalesced inference refresh
// however large it is. Response.Refresh == api.RefreshDeferred signals
// shard backpressure — the answers ARE recorded; slow down before the next
// batch rather than resubmitting.
func (c *Client) SubmitAnswers(ctx context.Context, project string, answers []api.Answer) (*api.SubmitAnswersResponse, error) {
	var out api.SubmitAnswersResponse
	err := c.do(ctx, http.MethodPost, "/v1/projects/"+url.PathEscape(project)+"/answers",
		nil, api.SubmitAnswersRequest{Answers: answers}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// EstimatesQuery selects which published model generation Estimates
// serves and how. The zero value reads the latest published snapshot —
// one atomic pointer load at the server, never blocked behind inference.
type EstimatesQuery struct {
	// Cursor continues a paged walk: the NextCursor of the previous page.
	// It encodes the pinned generation, so the walk stays on one model
	// state regardless of concurrent writes. Mutually exclusive with
	// Generation/MinGeneration.
	Cursor string
	// Limit caps the estimates per page (0 = everything).
	Limit int
	// Generation re-reads one specific retained generation (0 = latest).
	// An evicted generation fails with api.CodeGenerationGone.
	Generation int
	// MinGeneration is the refresh-if-stale knob: when the latest
	// published generation is below it, the server routes one coalescing
	// refresh through the project's shard and waits. Pass a generation
	// you have seen (e.g. from a watch event) for read-your-writes, or
	// api.GenerationFresh for the strongly consistent
	// reflects-every-recorded-answer read.
	MinGeneration int
	// IfNotGeneration makes the read conditional: the generation of the
	// copy you already hold. If the model is still at that generation the
	// server answers 304 and Estimates returns ErrNotModified — pollers
	// stop re-downloading unchanged models.
	IfNotGeneration int
}

// Estimates fetches one generation-pinned page of truth estimates. 429s
// (possible only on the MinGeneration refresh path) are retried with
// backoff.
func (c *Client) Estimates(ctx context.Context, project string, q EstimatesQuery) (*api.EstimatesResponse, error) {
	v := url.Values{}
	if q.Cursor != "" {
		v.Set("cursor", q.Cursor)
	}
	if q.Limit > 0 {
		v.Set("limit", strconv.Itoa(q.Limit))
	}
	if q.Generation > 0 {
		v.Set("generation", strconv.Itoa(q.Generation))
	}
	if q.MinGeneration > 0 {
		v.Set("min_generation", strconv.Itoa(q.MinGeneration))
	}
	path := "/v1/projects/" + url.PathEscape(project) + "/estimates"
	if len(v) > 0 {
		path += "?" + v.Encode()
	}
	var hdr http.Header
	if q.IfNotGeneration > 0 {
		hdr = http.Header{"If-None-Match": {`"` + strconv.Itoa(q.IfNotGeneration) + `"`}}
	}
	var out api.EstimatesResponse
	if err := c.do(ctx, http.MethodGet, path, hdr, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// AllEstimates walks the estimates pagination to completion, fetching
// pageSize estimates per request (0 = one unpaginated request), and
// returns the merged result. q selects the first page (its Cursor and
// Limit are ignored); later pages follow NextCursor, whose embedded
// generation pins the whole walk to the first page's model state — the
// result is generation-coherent by construction, with no retries, however
// fast answers land mid-walk. A walk that outlives the server's retention
// window fails with api.CodeGenerationGone; restart it from the latest
// generation.
func (c *Client) AllEstimates(ctx context.Context, project string, pageSize int, q EstimatesQuery) (*api.EstimatesResponse, error) {
	q.Cursor, q.Limit = "", pageSize
	out, err := c.Estimates(ctx, project, q)
	if err != nil {
		return nil, err
	}
	for out.NextCursor != "" {
		page, err := c.Estimates(ctx, project, EstimatesQuery{Cursor: out.NextCursor, Limit: pageSize})
		if err != nil {
			return nil, err
		}
		out.Estimates = append(out.Estimates, page.Estimates...)
		out.NextCursor = page.NextCursor
	}
	return out, nil
}

// Watch issues one long-poll for a generation bump past `after` (pass the
// last generation you have seen; 0 catches up to the first publish).
// It returns the next event, or (nil, nil) when the server's timeout
// elapsed with no publish — just call it again. timeout <= 0 uses the
// server default (30s). The wait is bounded client-side by a context
// deadline with headroom over the server timeout; any Timeout configured
// on the underlying *http.Client is ignored here (it would kill parked
// polls by design).
func (c *Client) Watch(ctx context.Context, project string, after int, timeout time.Duration) (*api.WatchEvent, error) {
	v := url.Values{}
	if after > 0 {
		v.Set("after", strconv.Itoa(after))
	}
	if timeout > 0 {
		v.Set("timeout", strconv.Itoa(int((timeout+time.Second-1)/time.Second)))
	} else {
		timeout = 30 * time.Second // mirror the server default for the client-side bound
	}
	ctx, cancel := context.WithTimeout(ctx, timeout+5*time.Second)
	defer cancel()
	path := "/v1/projects/" + url.PathEscape(project) + "/watch"
	if len(v) > 0 {
		path += "?" + v.Encode()
	}
	base := c.base
	for follows := 0; ; follows++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+path, nil)
		if err != nil {
			return nil, err
		}
		resp, err := c.streamHC().Do(req)
		if err != nil {
			return nil, err
		}
		switch {
		case resp.StatusCode == http.StatusNoContent:
			resp.Body.Close()
			return nil, nil
		case resp.StatusCode >= 300:
			err := decodeErr(resp)
			resp.Body.Close()
			var ae *APIError
			if errors.As(err, &ae) && ae.Code == api.CodeNotHome && ae.Home != "" && follows < maxHomeFollows {
				base = trimSlash(ae.Home)
				continue
			}
			return nil, err
		}
		var ev api.WatchEvent
		decErr := json.NewDecoder(resp.Body).Decode(&ev)
		resp.Body.Close()
		if decErr != nil {
			return nil, decErr
		}
		return &ev, nil
	}
}

// WatchStream opens the SSE variant of /watch and streams generation
// bumps until ctx is cancelled, the server shuts down, or the connection
// drops. The events channel closes when the stream ends; the error
// channel then yields exactly one value — nil for a clean end (server
// shutdown), the cause otherwise. Slow consumers see intermediate bumps
// coalesced into a latest event with Coalesced set, exactly like the
// server-side watcher buffer.
func (c *Client) WatchStream(ctx context.Context, project string, after int) (<-chan api.WatchEvent, <-chan error) {
	events := make(chan api.WatchEvent)
	errc := make(chan error, 1)
	go func() {
		defer close(events)
		errc <- c.watchStream(ctx, project, after, events)
	}()
	return events, errc
}

func (c *Client) watchStream(ctx context.Context, project string, after int, events chan<- api.WatchEvent) error {
	v := url.Values{}
	if after > 0 {
		v.Set("after", strconv.Itoa(after))
	}
	path := "/v1/projects/" + url.PathEscape(project) + "/watch"
	if len(v) > 0 {
		path += "?" + v.Encode()
	}
	base := c.base
	var resp *http.Response
	for follows := 0; ; follows++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+path, nil)
		if err != nil {
			return err
		}
		req.Header.Set("Accept", "text/event-stream")
		resp, err = c.streamHC().Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return err
		}
		if resp.StatusCode >= 300 {
			err := decodeErr(resp)
			resp.Body.Close()
			var ae *APIError
			if errors.As(err, &ae) && ae.Code == api.CodeNotHome && ae.Home != "" && follows < maxHomeFollows {
				base = trimSlash(ae.Home)
				continue
			}
			return err
		}
		break
	}
	defer resp.Body.Close()
	// Minimal SSE reader: collect data: lines, dispatch on blank line.
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	var data []byte
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "data:"):
			data = append(data, strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " ")...)
		case line == "" && len(data) > 0:
			var ev api.WatchEvent
			if err := json.Unmarshal(data, &ev); err != nil {
				return fmt.Errorf("tcrowd: bad watch event: %w", err)
			}
			data = data[:0]
			select {
			case events <- ev:
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		// event:/": keepalive" lines need no handling — the stream's only
		// event type is api.WatchEventGeneration.
	}
	if ctx.Err() != nil {
		return ctx.Err()
	}
	return sc.Err() // nil on a clean server-side end of stream
}

// Stats fetches a project's collection progress.
func (c *Client) Stats(ctx context.Context, project string) (*api.StatsResponse, error) {
	var out api.StatsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/projects/"+url.PathEscape(project)+"/stats", nil, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Workers fetches a project's worker-reputation roster: one row per
// observed worker with its defense state ("active", "watched",
// "quarantined", "banned"), reputation score and current inference
// weight. Defense reports whether the project runs the reputation engine
// at all; with it off the list is empty.
func (c *Client) Workers(ctx context.Context, project string) (*api.WorkersResponse, error) {
	var out api.WorkersResponse
	if err := c.do(ctx, http.MethodGet, "/v1/projects/"+url.PathEscape(project)+"/workers", nil, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// IsWorkerBanned reports whether err is the server's 403 worker_banned
// rejection — the submitting (or task-requesting) worker was auto-banned
// by the project's reputation engine. Bans are permanent, so the right
// client reaction is to stop retrying on that worker's behalf. Works on
// both the single-answer error and per-item codes inside a
// batch_rejected envelope.
func IsWorkerBanned(err error) bool {
	var ae *APIError
	if !errors.As(err, &ae) {
		return false
	}
	if ae.Code == api.CodeWorkerBanned {
		return true
	}
	for _, it := range ae.Items {
		if it.Code == api.CodeWorkerBanned {
			return true
		}
	}
	return false
}

// ShardStats fetches the server's shard-scheduler metrics.
func (c *Client) ShardStats(ctx context.Context) (*api.ShardStatsResponse, error) {
	var out api.ShardStatsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/stats", nil, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}
