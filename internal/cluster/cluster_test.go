package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"tcrowd/api"
	"tcrowd/client"
	"tcrowd/internal/cluster/member"
	"tcrowd/internal/platform"
	"tcrowd/internal/wal"
)

// switchable lets a test swap the handler behind a live listener — the
// handoff test re-creates a Node with a new member spec mid-test.
type switchable struct{ h atomic.Value }

func (s *switchable) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.h.Load().(http.Handler).ServeHTTP(w, r)
}

type testNode struct {
	id    string
	addr  string
	set   *member.Set
	p     *platform.Platform
	local *platform.Server
	node  *Node
	sw    *switchable
	srv   *http.Server
}

type testCluster struct {
	spec  string
	nodes []*testNode
}

// startCluster boots n real nodes on loopback listeners: each one a full
// platform (durable when walRoot is set) wrapped in a cluster Node, all
// sharing one -peers spec. Cleanup tears everything down.
func startCluster(t *testing.T, n int, mode RouteMode, durable bool) *testCluster {
	t.Helper()
	lns := make([]net.Listener, n)
	parts := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		parts[i] = fmt.Sprintf("n%d=http://%s", i+1, ln.Addr())
	}
	tc := &testCluster{spec: strings.Join(parts, ",")}
	for i, ln := range lns {
		id := fmt.Sprintf("n%d", i+1)
		set, err := member.Parse(id, tc.spec)
		if err != nil {
			t.Fatal(err)
		}
		tn := &testNode{id: id, addr: set.Self().Addr, set: set}
		opts := platform.Options{Workers: 2}
		if durable {
			opts.WAL = &platform.WALOptions{Dir: t.TempDir(), Policy: wal.SyncAlways}
			tn.p, _, err = platform.Recover(1, opts)
			if err != nil {
				t.Fatal(err)
			}
		} else {
			tn.p = platform.NewWithOptions(1, opts)
		}
		tn.local = platform.NewServer(tn.p)
		tn.node, err = New(Options{Members: set, Platform: tn.p, Local: tn.local, Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		tn.sw = &switchable{}
		tn.sw.h.Store(http.Handler(tn.node))
		tn.srv = &http.Server{Handler: tn.sw}
		go tn.srv.Serve(ln)
		tc.nodes = append(tc.nodes, tn)
	}
	t.Cleanup(func() {
		for _, tn := range tc.nodes {
			tn.srv.Close()
			tn.node.Close()
			tn.p.Close()
		}
	})
	return tc
}

// projectHomedOn finds a project id the shared ring places on the given
// node.
func projectHomedOn(t *testing.T, set *member.Set, nodeID string) string {
	t.Helper()
	for i := 0; i < 10_000; i++ {
		id := fmt.Sprintf("proj-%d", i)
		if set.HomeOf(id).ID == nodeID {
			return id
		}
	}
	t.Fatalf("no project id hashes to %s", nodeID)
	return ""
}

// rawGet issues a plain GET against a specific node, returning status,
// headers and body — no SDK smarts, so it observes exactly what the node
// sends.
func rawGet(t *testing.T, url string, hdr http.Header) (int, http.Header, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header[k] = v
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, body
}

func clusterSchema() api.Schema {
	return api.Schema{
		Key: "item",
		Columns: []api.Column{
			{Name: "category", Type: "categorical", Labels: []string{"book", "movie", "game"}},
			{Name: "price", Type: "continuous", Min: 0, Max: 500},
		},
	}
}

// waitGeneration polls one node's estimates endpoint until it serves at
// least generation gen, returning the response.
func waitGeneration(t *testing.T, addr, project string, gen int) *api.EstimatesResponse {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		status, _, body := rawGet(t, addr+"/v1/projects/"+project+"/estimates", nil)
		if status == http.StatusOK {
			var est api.EstimatesResponse
			if err := json.Unmarshal(body, &est); err == nil && est.Generation >= gen {
				return &est
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never served %s generation %d (last status %d)", addr, project, gen, status)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestClusterReplicatedReads is the acceptance e2e: a 3-node cluster
// where writes through ANY node land on the project's home, every
// published generation replicates to both followers, and the followers
// serve the same generation number with byte-identical estimate pages,
// correct stats, and working conditional reads.
func TestClusterReplicatedReads(t *testing.T) {
	tc := startCluster(t, 3, RouteForward, true)
	set := tc.nodes[0].set
	project := projectHomedOn(t, set, "n2")
	home := tc.nodes[1]

	// Create through a NON-home node: the edge must route it by the ID in
	// the body.
	c1 := client.New(tc.nodes[0].addr)
	ctx := context.Background()
	if err := c1.CreateProject(ctx, api.CreateProjectRequest{ID: project, Schema: clusterSchema(), Rows: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := home.p.Project(project); err != nil {
		t.Fatalf("create through n1 did not land on home n2: %v", err)
	}

	// Submit through the third node; the strong read pins the resulting
	// generation.
	c3 := client.New(tc.nodes[2].addr)
	if _, err := c3.SubmitAnswers(ctx, project, []api.Answer{
		api.LabelAnswer("w1", 0, "category", "movie"),
		api.LabelAnswer("w2", 0, "category", "movie"),
		api.NumberAnswer("w1", 1, "price", 100),
	}); err != nil {
		t.Fatal(err)
	}
	fresh, err := c3.Estimates(ctx, project, client.EstimatesQuery{MinGeneration: api.GenerationFresh})
	if err != nil {
		t.Fatal(err)
	}
	gen := fresh.Generation

	// Both followers converge to the same generation, and the pinned page
	// is byte-identical on all three nodes.
	for _, tn := range tc.nodes {
		waitGeneration(t, tn.addr, project, gen)
	}
	var pinned [][]byte
	for _, tn := range tc.nodes {
		status, hdr, body := rawGet(t, tn.addr+"/v1/projects/"+project+"/estimates?generation="+fmt.Sprint(gen), nil)
		if status != http.StatusOK {
			t.Fatalf("%s pinned read: %d %s", tn.id, status, body)
		}
		if etag := hdr.Get("ETag"); etag != fmt.Sprintf(`"%d"`, gen) {
			t.Fatalf("%s ETag = %q", tn.id, etag)
		}
		pinned = append(pinned, body)
	}
	if !bytes.Equal(pinned[0], pinned[1]) || !bytes.Equal(pinned[1], pinned[2]) {
		t.Fatalf("estimate pages differ across nodes:\nn1: %s\nn2: %s\nn3: %s", pinned[0], pinned[1], pinned[2])
	}

	// Conditional read against a FOLLOWER: 304 without a body.
	status, _, body := rawGet(t, tc.nodes[0].addr+"/v1/projects/"+project+"/estimates",
		http.Header{"If-None-Match": {fmt.Sprintf(`"%d"`, gen)}})
	if status != http.StatusNotModified || len(body) != 0 {
		t.Fatalf("follower conditional read: %d %q", status, body)
	}

	// Stats served by a follower agree with the home's answer count.
	st, err := c1.Stats(ctx, project)
	if err != nil || st.Answers != 3 {
		t.Fatalf("follower stats = %+v, %v", st, err)
	}

	// A follower watch long-poll delivers the NEXT bump, served from the
	// follower's own hub (no proxying: the project exists locally).
	type watchResult struct {
		ev  *api.WatchEvent
		err error
	}
	watchc := make(chan watchResult, 1)
	go func() {
		ev, err := c1.Watch(ctx, project, gen, 10*time.Second)
		watchc <- watchResult{ev, err}
	}()
	time.Sleep(100 * time.Millisecond) // park the poll before publishing
	if _, err := c3.SubmitAnswers(ctx, project, []api.Answer{
		api.LabelAnswer("w3", 0, "category", "movie"),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c3.Estimates(ctx, project, client.EstimatesQuery{MinGeneration: api.GenerationFresh}); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-watchc:
		if r.err != nil || r.ev == nil || r.ev.Generation <= gen {
			t.Fatalf("replica watch = %+v, %v", r.ev, r.err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("replica watch never delivered the bump")
	}
}

// TestClusterRejectModeAndSDKFollow pins the 421 contract: in reject
// mode a write to a non-home node answers a typed not_home envelope
// carrying the home's address, and the SDK follows it transparently.
func TestClusterRejectModeAndSDKFollow(t *testing.T) {
	tc := startCluster(t, 3, RouteReject, false)
	set := tc.nodes[0].set
	project := projectHomedOn(t, set, "n3")
	homeAddr := tc.nodes[2].addr
	ctx := context.Background()

	// Raw request to the wrong node: 421 + envelope with code and home.
	body, _ := json.Marshal(api.CreateProjectRequest{ID: project, Schema: clusterSchema(), Rows: 4})
	resp, err := http.Post(tc.nodes[0].addr+"/v1/projects", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("create at non-home: %d %s", resp.StatusCode, raw)
	}
	var env api.ErrorEnvelope
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatal(err)
	}
	if env.Err.Code != api.CodeNotHome || env.Err.Home != homeAddr || env.Err.Retryable {
		t.Fatalf("not_home envelope = %+v, want code %s home %s", env.Err, api.CodeNotHome, homeAddr)
	}

	// The SDK pointed at the SAME wrong node succeeds end to end: it
	// follows the referral automatically.
	c := client.New(tc.nodes[0].addr)
	if err := c.CreateProject(ctx, api.CreateProjectRequest{ID: project, Schema: clusterSchema(), Rows: 4}); err != nil {
		t.Fatalf("SDK create via non-home: %v", err)
	}
	if _, err := c.SubmitAnswers(ctx, project, []api.Answer{
		api.LabelAnswer("w1", 0, "category", "book"),
	}); err != nil {
		t.Fatalf("SDK submit via non-home: %v", err)
	}
	if _, err := c.Tasks(ctx, project, "w9", 2); err != nil {
		t.Fatalf("SDK tasks via non-home: %v", err)
	}
	if _, err := tc.nodes[2].p.Project(project); err != nil {
		t.Fatalf("project did not land on home: %v", err)
	}
}

// TestClusterRedirectMode pins the opt-in 307 behaviour: the Location
// names the home node, and stock net/http clients re-issue the request
// there themselves.
func TestClusterRedirectMode(t *testing.T) {
	tc := startCluster(t, 2, RouteRedirect, false)
	set := tc.nodes[0].set
	project := projectHomedOn(t, set, "n2")
	ctx := context.Background()

	noFollow := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error { return http.ErrUseLastResponse }}
	body, _ := json.Marshal(api.CreateProjectRequest{ID: project, Schema: clusterSchema(), Rows: 2})
	req, _ := http.NewRequest(http.MethodPost, tc.nodes[0].addr+"/v1/projects", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	resp, err := noFollow.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("redirect mode answered %d", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != tc.nodes[1].addr+"/v1/projects" {
		t.Fatalf("Location = %q", loc)
	}

	// A stock client (the SDK's default) follows the 307 with method and
	// body preserved.
	c := client.New(tc.nodes[0].addr)
	if err := c.CreateProject(ctx, api.CreateProjectRequest{ID: project, Schema: clusterSchema(), Rows: 2}); err != nil {
		t.Fatalf("SDK create through 307: %v", err)
	}
	if _, err := tc.nodes[1].p.Project(project); err != nil {
		t.Fatalf("project did not land on home: %v", err)
	}
}

// TestClusterDeleteFanout pins that deleting a project at its home drops
// the replicas on every peer.
func TestClusterDeleteFanout(t *testing.T) {
	tc := startCluster(t, 3, RouteForward, true)
	set := tc.nodes[0].set
	project := projectHomedOn(t, set, "n1")
	ctx := context.Background()

	c := client.New(tc.nodes[1].addr)
	if err := c.CreateProject(ctx, api.CreateProjectRequest{ID: project, Schema: clusterSchema(), Rows: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SubmitAnswers(ctx, project, []api.Answer{api.LabelAnswer("w1", 0, "category", "game")}); err != nil {
		t.Fatal(err)
	}
	fresh, err := c.Estimates(ctx, project, client.EstimatesQuery{MinGeneration: api.GenerationFresh})
	if err != nil {
		t.Fatal(err)
	}
	for _, tn := range tc.nodes {
		waitGeneration(t, tn.addr, project, fresh.Generation)
	}

	if err := c.DeleteProject(ctx, project); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for _, tn := range tc.nodes {
		for {
			_, err := tn.p.Project(project)
			if err != nil {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s still holds deleted project %s", tn.id, project)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
}

// TestClusterHandoffOnMembershipChange grows a 1-node "cluster" into the
// full 3-node spec and proves the moved project is handed off: the WAL
// and latest generation transfer to the new home, the old home demotes to
// a serving replica, writes flow to the new home, and generation
// numbering continues without a restart.
func TestClusterHandoffOnMembershipChange(t *testing.T) {
	tc := startCluster(t, 3, RouteForward, true)
	n1 := tc.nodes[0]
	project := projectHomedOn(t, n1.set, "n2")
	ctx := context.Background()

	// Phase 1: n1 runs solo (single-member spec) and homes everything.
	soloSet, err := member.Parse("n1", "n1="+n1.addr)
	if err != nil {
		t.Fatal(err)
	}
	n1.node.Close()
	solo, err := New(Options{Members: soloSet, Platform: n1.p, Local: platform.NewServer(n1.p), Mode: RouteForward})
	if err != nil {
		t.Fatal(err)
	}
	n1.sw.h.Store(http.Handler(solo))

	c := client.New(n1.addr)
	if err := c.CreateProject(ctx, api.CreateProjectRequest{ID: project, Schema: clusterSchema(), Rows: 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SubmitAnswers(ctx, project, []api.Answer{
		api.LabelAnswer("w1", 0, "category", "movie"),
		api.LabelAnswer("w2", 0, "category", "movie"),
	}); err != nil {
		t.Fatal(err)
	}
	before, err := c.Estimates(ctx, project, client.EstimatesQuery{MinGeneration: api.GenerationFresh})
	if err != nil {
		t.Fatal(err)
	}

	// Phase 2: the operator grows the spec; n1 "restarts" into the full
	// ring and rebalances. Only the moved project transfers.
	solo.Close()
	grown, err := New(Options{Members: n1.set, Platform: n1.p, Local: platform.NewServer(n1.p), Mode: RouteForward})
	if err != nil {
		t.Fatal(err)
	}
	n1.sw.h.Store(http.Handler(grown))
	defer grown.Close()
	if err := grown.Rebalance(); err != nil {
		t.Fatalf("rebalance: %v", err)
	}

	// The old home is a follower now; the new home owns the full history.
	follower, home, err := n1.p.IsFollower(project)
	if err != nil || !follower {
		t.Fatalf("n1 after handoff: follower=%v home=%q err=%v", follower, home, err)
	}
	newHomeProj, err := tc.nodes[1].p.Project(project)
	if err != nil {
		t.Fatalf("new home missing project: %v", err)
	}
	if got := newHomeProj.Log.Len(); got != 2 {
		t.Fatalf("new home owns %d answers, want 2", got)
	}

	// Writes through the demoted node route to the new home; the next
	// generation continues the numbering and replicates back to n1.
	if _, err := c.SubmitAnswers(ctx, project, []api.Answer{
		api.LabelAnswer("w3", 0, "category", "movie"),
	}); err != nil {
		t.Fatalf("write after handoff: %v", err)
	}
	after, err := c.Estimates(ctx, project, client.EstimatesQuery{MinGeneration: api.GenerationFresh})
	if err != nil {
		t.Fatal(err)
	}
	if after.Generation <= before.Generation {
		t.Fatalf("generation did not continue across handoff: %d then %d", before.Generation, after.Generation)
	}
	waitGeneration(t, n1.addr, project, after.Generation)
}
