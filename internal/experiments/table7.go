package experiments

import (
	"fmt"
	"io"
	"math"

	"tcrowd/internal/baselines"
	"tcrowd/internal/metrics"
	"tcrowd/internal/simulate"
	"tcrowd/internal/tabular"
)

// runTable6 prints the dataset statistics table and verifies the stand-ins
// reproduce the published shapes.
func runTable6(w io.Writer, cfg Config) error {
	c := cfg.withDefaults()
	fmt.Fprintf(w, "%-12s %6s %9s %7s %14s %8s\n", "Dataset", "#Rows", "#Columns", "#Cells", "#Ans. per Task", "#Workers")
	for _, name := range simulate.StandInNames() {
		ds, err := simulate.StandIn(name, c.Seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-12s %6d %9d %7d %14d %8d\n",
			ds.Name, ds.Table.NumRows(), ds.Table.NumCols(), ds.Table.NumCells(),
			ds.AnswersPerTask, len(ds.Workers))
	}
	return nil
}

// Table7Result is one (method, dataset) effectiveness measurement.
type Table7Result struct {
	Method  string
	Dataset string
	Report  metrics.Report
}

// Table7 computes the full truth-inference effectiveness matrix, averaging
// each (method, dataset) cell over cfg.Trials independent collections so a
// couple of flipped cells in one draw do not decide the comparison.
func Table7(cfg Config) ([]Table7Result, error) {
	c := cfg.withDefaults()
	datasets := simulate.StandInNames()
	if c.Quick {
		datasets = []string{"Restaurant"}
	}
	methods := baselines.All()
	var out []Table7Result
	for _, name := range datasets {
		sumER := make([]float64, len(methods))
		cntER := make([]float64, len(methods))
		sumMN := make([]float64, len(methods))
		cntMN := make([]float64, len(methods))
		var catCells, contCells int
		for trial := 0; trial < c.Trials; trial++ {
			seed := c.Seed + int64(trial)*7777
			ds, err := simulate.StandIn(name, seed)
			if err != nil {
				return nil, err
			}
			crowd := simulate.NewCrowd(ds, seed+1)
			perTask := ds.AnswersPerTask
			if c.Quick && perTask > 3 {
				perTask = 3
			}
			log := crowd.FixedAssignment(perTask)
			for mi, m := range methods {
				est, err := m.Infer(ds.Table, log)
				if err != nil {
					return nil, fmt.Errorf("table7: %s on %s: %w", m.Name(), name, err)
				}
				rep := metrics.Evaluate(ds.Table, est, log)
				if !math.IsNaN(rep.ErrorRate) {
					sumER[mi] += rep.ErrorRate
					cntER[mi]++
				}
				if !math.IsNaN(rep.MNAD) {
					sumMN[mi] += rep.MNAD
					cntMN[mi]++
				}
				catCells, contCells = rep.CatCells, rep.ContCells
			}
		}
		for mi, m := range methods {
			rep := metrics.Report{ErrorRate: math.NaN(), MNAD: math.NaN(), CatCells: catCells, ContCells: contCells}
			if cntER[mi] > 0 {
				rep.ErrorRate = sumER[mi] / cntER[mi]
			}
			if cntMN[mi] > 0 {
				rep.MNAD = sumMN[mi] / cntMN[mi]
			}
			out = append(out, Table7Result{Method: m.Name(), Dataset: name, Report: rep})
		}
	}
	return out, nil
}

func runTable7(w io.Writer, cfg Config) error {
	results, err := Table7(cfg)
	if err != nil {
		return err
	}
	datasets := []string{}
	seen := map[string]bool{}
	for _, r := range results {
		if !seen[r.Dataset] {
			seen[r.Dataset] = true
			datasets = append(datasets, r.Dataset)
		}
	}
	// Header: per dataset, Error Rate and MNAD columns (Emotion has no
	// categorical columns, so its Error Rate renders "/").
	fmt.Fprintf(w, "%-16s", "Method")
	for _, d := range datasets {
		fmt.Fprintf(w, " %10s %10s", d[:min(8, len(d))]+"/ER", d[:min(8, len(d))]+"/MNAD")
	}
	fmt.Fprintln(w)
	byMethod := map[string]map[string]metrics.Report{}
	var methodOrder []string
	for _, r := range results {
		if byMethod[r.Method] == nil {
			byMethod[r.Method] = map[string]metrics.Report{}
			methodOrder = append(methodOrder, r.Method)
		}
		byMethod[r.Method][r.Dataset] = r.Report
	}
	for _, m := range methodOrder {
		fmt.Fprintf(w, "%-16s", m)
		for _, d := range datasets {
			rep := byMethod[m][d]
			fmt.Fprintf(w, " %10s %10s", fmtMetric(rep.ErrorRate), fmtMetric(rep.MNAD))
		}
		fmt.Fprintln(w)
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// fixedLog builds the AMT-style fixed-assignment log for a stand-in.
func fixedLog(name string, seed int64, perTask int) (*simulate.Dataset, *tabular.AnswerLog, error) {
	ds, err := simulate.StandIn(name, seed)
	if err != nil {
		return nil, nil, err
	}
	crowd := simulate.NewCrowd(ds, seed+1)
	if perTask <= 0 {
		perTask = ds.AnswersPerTask
	}
	return ds, crowd.FixedAssignment(perTask), nil
}
