package baselines

import (
	"math"

	"tcrowd/internal/metrics"
	"tcrowd/internal/stats"
	"tcrowd/internal/tabular"
)

// DawidSkene is the classical confusion-matrix EM of Dawid & Skene (1979)
// — the method the paper's Table 7 labels "EM". Because label sets differ
// per column, one independent D&S instance runs per categorical column;
// this per-column independence is exactly the knowledge-transfer gap
// T-Crowd closes.
type DawidSkene struct {
	// MaxIter bounds EM iterations (default 50).
	MaxIter int
	// Smooth is the Laplace smoothing mass for confusion-matrix rows
	// (default 0.1).
	Smooth float64
}

// Name implements Method.
func (DawidSkene) Name() string { return "D&S (EM)" }

// Infer implements Method.
func (d DawidSkene) Infer(tbl *tabular.Table, log *tabular.AnswerLog) (metrics.Estimates, error) {
	maxIter := d.MaxIter
	if maxIter <= 0 {
		maxIter = 50
	}
	est := metrics.NewEstimates(tbl)
	for _, j := range catColumns(tbl) {
		smooth := d.Smooth
		if smooth <= 0 {
			// One pseudo-count spread over the whole confusion-matrix row:
			// a fixed per-entry mass would swamp real counts on large
			// label sets (|L| can reach the hundreds for name columns).
			smooth = 1 / float64(tbl.Schema.Columns[j].NumLabels())
		}
		inferDSColumn(tbl, log, j, maxIter, smooth, est)
	}
	return est, nil
}

func inferDSColumn(tbl *tabular.Table, log *tabular.AnswerLog, j, maxIter int, smooth float64, est metrics.Estimates) {
	l := tbl.Schema.Columns[j].NumLabels()
	type obs struct {
		w, i, label int
	}
	var observations []obs
	workerIdx := map[tabular.WorkerID]int{}
	var rows []int
	rowSeen := map[int]bool{}
	for i := 0; i < tbl.NumRows(); i++ {
		for _, a := range log.ByCell(tabular.Cell{Row: i, Col: j}) {
			k, ok := workerIdx[a.Worker]
			if !ok {
				k = len(workerIdx)
				workerIdx[a.Worker] = k
			}
			observations = append(observations, obs{w: k, i: i, label: a.Value.L})
			if !rowSeen[i] {
				rowSeen[i] = true
				rows = append(rows, i)
			}
		}
	}
	if len(observations) == 0 {
		return
	}
	nw := len(workerIdx)

	// post[i] is P(T_i = z); init from vote shares.
	post := make(map[int][]float64, len(rows))
	for _, i := range rows {
		post[i] = make([]float64, l)
	}
	for _, o := range observations {
		post[o.i][o.label]++
	}
	for _, i := range rows {
		for z := range post[i] {
			post[i][z] += 0.5
		}
		normalize(post[i])
	}

	// Confusion matrices pi[w][z][z'] = P(answer z' | truth z) and class
	// prior p[z].
	pi := make([][][]float64, nw)
	prior := make([]float64, l)

	for it := 0; it < maxIter; it++ {
		// M-step.
		for w := 0; w < nw; w++ {
			pi[w] = make([][]float64, l)
			for z := 0; z < l; z++ {
				row := make([]float64, l)
				for zp := range row {
					row[zp] = smooth
				}
				pi[w][z] = row
			}
		}
		for z := range prior {
			prior[z] = smooth
		}
		for _, o := range observations {
			for z := 0; z < l; z++ {
				pi[o.w][z][o.label] += post[o.i][z]
			}
		}
		for _, i := range rows {
			for z := 0; z < l; z++ {
				prior[z] += post[i][z]
			}
		}
		for w := 0; w < nw; w++ {
			for z := 0; z < l; z++ {
				normalize(pi[w][z])
			}
		}
		normalize(prior)

		// E-step.
		next := make(map[int][]float64, len(rows))
		for _, i := range rows {
			lp := make([]float64, l)
			for z := 0; z < l; z++ {
				lp[z] = math.Log(prior[z])
			}
			next[i] = lp
		}
		for _, o := range observations {
			lp := next[o.i]
			for z := 0; z < l; z++ {
				lp[z] += math.Log(pi[o.w][z][o.label])
			}
		}
		delta := 0.0
		for _, i := range rows {
			p := stats.NormalizeLogProbs(next[i])
			for z := 0; z < l; z++ {
				if d := math.Abs(p[z] - post[i][z]); d > delta {
					delta = d
				}
			}
			post[i] = p
		}
		if delta < 1e-6 {
			break
		}
	}
	for _, i := range rows {
		est[i][j] = tabular.LabelValue(argMax(post[i]))
	}
}

// ZenCrowd collapses the confusion matrix to one reliability r_u per
// worker (Demartini et al., WWW'12). Unlike D&S it shares r_u across all
// categorical columns, which already transfers some signal between columns
// — but none from continuous data.
type ZenCrowd struct {
	// MaxIter bounds EM iterations (default 50).
	MaxIter int
}

// Name implements Method.
func (ZenCrowd) Name() string { return "Zencrowd" }

// Infer implements Method.
func (zc ZenCrowd) Infer(tbl *tabular.Table, log *tabular.AnswerLog) (metrics.Estimates, error) {
	maxIter := zc.MaxIter
	if maxIter <= 0 {
		maxIter = 50
	}
	est := metrics.NewEstimates(tbl)

	type obs struct {
		w, i, j, label, l int
	}
	var observations []obs
	workerIdx := map[tabular.WorkerID]int{}
	type cellKey struct{ i, j int }
	post := map[cellKey][]float64{}
	for _, j := range catColumns(tbl) {
		l := tbl.Schema.Columns[j].NumLabels()
		for i := 0; i < tbl.NumRows(); i++ {
			as := log.ByCell(tabular.Cell{Row: i, Col: j})
			if len(as) == 0 {
				continue
			}
			p := make([]float64, l)
			for _, a := range as {
				k, ok := workerIdx[a.Worker]
				if !ok {
					k = len(workerIdx)
					workerIdx[a.Worker] = k
				}
				observations = append(observations, obs{w: k, i: i, j: j, label: a.Value.L, l: l})
				p[a.Value.L]++
			}
			for z := range p {
				p[z] += 0.5
			}
			normalize(p)
			post[cellKey{i, j}] = p
		}
	}
	if len(observations) == 0 {
		return est, nil
	}

	rel := make([]float64, len(workerIdx))
	for it := 0; it < maxIter; it++ {
		// M-step: r_u = smoothed expected fraction of correct answers.
		num := make([]float64, len(rel))
		den := make([]float64, len(rel))
		for _, o := range observations {
			num[o.w] += post[cellKey{o.i, o.j}][o.label]
			den[o.w]++
		}
		delta := 0.0
		for w := range rel {
			r := (num[w] + 1) / (den[w] + 2) // Beta(1,1)-smoothed
			if d := math.Abs(r - rel[w]); d > delta {
				delta = d
			}
			rel[w] = r
		}

		// E-step.
		next := map[cellKey][]float64{}
		for key, p := range post {
			lp := make([]float64, len(p))
			next[key] = lp
		}
		for _, o := range observations {
			lp := next[cellKey{o.i, o.j}]
			r := stats.Clamp(rel[o.w], 1e-6, 1-1e-6)
			lnWrong := math.Log((1 - r) / float64(o.l-1))
			lnRight := math.Log(r)
			for z := range lp {
				if z == o.label {
					lp[z] += lnRight
				} else {
					lp[z] += lnWrong
				}
			}
		}
		for key, lp := range next {
			post[key] = stats.NormalizeLogProbs(lp)
		}
		if delta < 1e-6 && it > 0 {
			break
		}
	}
	for key, p := range post {
		est[key.i][key.j] = tabular.LabelValue(argMax(p))
	}
	return est, nil
}

func normalize(p []float64) {
	s := 0.0
	for _, v := range p {
		s += v
	}
	if s <= 0 {
		u := 1 / float64(len(p))
		for i := range p {
			p[i] = u
		}
		return
	}
	for i := range p {
		p[i] /= s
	}
}
