// Package wal implements a per-project append-only segmented write-ahead
// log. Records are length-prefixed and CRC32C-framed; segments rotate at a
// size threshold; compaction rewrites the log as one checkpoint record
// (the platform reuses the published generation snapshot as that
// artifact) and deletes every segment wholly behind it.
//
// Frame layout (little-endian):
//
//	[uint32 payload length][uint32 CRC32C(payload)][payload]
//
// where payload[0] is the record type and payload[1:] the record data.
// Payload length is bounded to [1, MaxRecordBytes]: the lower bound means
// a run of zero bytes can never decode as an endless stream of empty
// frames, and the upper bound caps allocation when the length field
// itself is corrupt.
//
// Recovery semantics:
//
//   - A bad frame in the LAST segment is a torn tail (the process died
//     mid-write): replay truncates the segment at the last good frame and
//     boots with everything before it. Acknowledged records are synced
//     frames and therefore always before the tear.
//   - A bad frame in any EARLIER segment is real corruption (bit rot,
//     operator damage): replay refuses with ErrWALCorrupt rather than
//     silently dropping an unbounded middle of the history.
//   - Replay starts at the newest segment whose first record is a
//     checkpoint, so a crash mid-compaction (old segments partially
//     deleted) is harmless: everything behind the checkpoint is dead
//     weight, not required state.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"sync"
	"time"
)

// ErrWALCorrupt reports a bad frame before the final segment's tail —
// damage replay cannot attribute to a crash and will not silently skip.
var ErrWALCorrupt = errors.New("wal: corrupt frame before log tail")

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// MaxRecordBytes bounds one frame's payload (type byte + data).
const MaxRecordBytes = 64 << 20

// DefaultSegmentBytes is the rotation threshold when Options.SegmentBytes
// is zero.
const DefaultSegmentBytes = 4 << 20

// DefaultSyncInterval is the background flush cadence for SyncInterval
// when Options.Interval is zero.
const DefaultSyncInterval = 100 * time.Millisecond

const frameHeader = 8 // uint32 length + uint32 crc

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SyncPolicy says when appended frames are fsynced.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: an acknowledged record
	// survives any crash. The durability the crash tests pin.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a background cadence: bounded data loss
	// (at most one interval) for near-SyncNever append latency.
	SyncInterval
	// SyncNever leaves flushing to the OS; rotation, compaction and
	// Close still sync so sealed segments are durable.
	SyncNever
)

// ParseSyncPolicy maps the -fsync flag values to a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval or never)", s)
}

// String renders the flag spelling of the policy.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// Record is one logical WAL entry: a type tag and an opaque payload the
// caller encodes/decodes.
type Record struct {
	Type byte
	Data []byte
}

// Options configures a Log.
type Options struct {
	// SegmentBytes is the rotation threshold (default DefaultSegmentBytes).
	SegmentBytes int64
	// Policy controls fsync behaviour (default SyncAlways).
	Policy SyncPolicy
	// Interval is the flush cadence for SyncInterval (default
	// DefaultSyncInterval).
	Interval time.Duration
	// FS is the filesystem seam (default OSFS). Tests inject MemFS.
	FS FS
	// CheckpointType is the record type Compact writes and replay
	// recognises as a segment-leading checkpoint. Appending a normal
	// record with this type corrupts the replay-start scan; callers
	// reserve it.
	CheckpointType byte
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.Interval <= 0 {
		o.Interval = DefaultSyncInterval
	}
	if o.FS == nil {
		o.FS = OSFS()
	}
	return o
}

// Replay is what Open recovered from disk.
type Replay struct {
	// Records are the surviving records in append order, starting at the
	// newest checkpoint (the checkpoint record itself is first when one
	// exists).
	Records []Record
	// Torn reports that the final segment ended in a bad frame and was
	// truncated back to the last good one.
	Torn bool
	// TornBytes is how many trailing bytes the truncation discarded.
	TornBytes int64
}

// Log is one project's write-ahead log. Methods are safe for concurrent
// use, though the platform additionally serialises appends under its own
// lock so WAL order matches in-memory log order exactly.
type Log struct {
	dir  string
	opts Options

	mu sync.Mutex
	//tcrowd:guardedby mu
	file File // current segment, open for append
	//tcrowd:guardedby mu
	name string // current segment path
	//tcrowd:guardedby mu
	index int // current segment index
	//tcrowd:guardedby mu
	size int64 // bytes written to current segment (all good frames)
	//tcrowd:guardedby mu
	dirty bool // unsynced appends outstanding (SyncInterval/Never)
	//tcrowd:guardedby mu
	sticky error // unrecoverable fault; all further mutations fail
	//tcrowd:guardedby mu
	closed bool
}

var segmentRE = regexp.MustCompile(`^(\d{8})\.wal$`)

func segmentName(idx int) string { return fmt.Sprintf("%08d.wal", idx) }

// Open mounts (creating if absent) the log in dir, replays surviving
// records, truncates a torn tail, and leaves the log ready to append.
func Open(dir string, opts Options) (*Log, Replay, error) {
	opts = opts.withDefaults()
	fs := opts.FS
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, Replay{}, fmt.Errorf("wal: mkdir %s: %w", dir, err)
	}

	entries, err := fs.ReadDir(dir)
	if err != nil {
		return nil, Replay{}, fmt.Errorf("wal: list %s: %w", dir, err)
	}
	var indices []int
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if m := segmentRE.FindStringSubmatch(e.Name()); m != nil {
			idx, _ := strconv.Atoi(m[1])
			indices = append(indices, idx)
			continue
		}
		// Stray temp files are crashed compactions that never renamed;
		// they hold nothing durable. Best effort cleanup.
		if path.Ext(e.Name()) == ".tmp" {
			_ = fs.Remove(filepath.Join(dir, e.Name()))
		}
	}
	sort.Ints(indices)

	l := &Log{dir: dir, opts: opts}

	if len(indices) == 0 {
		//lint:allow lockcheck the Log is still being constructed: no other goroutine can hold a reference before Open returns
		if err := l.openSegment(1, true); err != nil {
			return nil, Replay{}, err
		}
		registerFlusher(l)
		return l, Replay{}, nil
	}

	// Pick the replay start: the newest segment whose first frame is a
	// checkpoint. Older segments (possibly partially deleted by a crashed
	// compaction) are behind that checkpoint and ignored.
	start := 0
	for i := len(indices) - 1; i > 0; i-- {
		leads, err := l.leadsWithCheckpoint(indices[i])
		if err != nil {
			return nil, Replay{}, err
		}
		if leads {
			start = i
			break
		}
	}

	var rep Replay
	for i := start; i < len(indices); i++ {
		idx := indices[i]
		segPath := filepath.Join(dir, segmentName(idx))
		data, err := readAll(fs, segPath)
		if err != nil {
			return nil, Replay{}, fmt.Errorf("wal: read %s: %w", segPath, err)
		}
		recs, good, err := decodeFrames(data)
		rep.Records = append(rep.Records, recs...)
		if err != nil {
			if i != len(indices)-1 {
				return nil, Replay{}, fmt.Errorf("%w: %s at offset %d: %v", ErrWALCorrupt, segmentName(idx), good, err)
			}
			// Torn tail: cut the final segment back to its last good frame.
			if terr := fs.Truncate(segPath, good); terr != nil {
				return nil, Replay{}, fmt.Errorf("wal: truncate torn tail of %s: %w", segPath, terr)
			}
			rep.Torn = true
			rep.TornBytes = int64(len(data)) - good
		}
		if i == len(indices)-1 {
			//lint:allow lockcheck the Log is still being constructed: no other goroutine can hold a reference before Open returns
			l.index, l.size = idx, good
		}
	}

	//lint:allow lockcheck the Log is still being constructed: no other goroutine can hold a reference before Open returns
	if err := l.openSegment(l.index, false); err != nil {
		return nil, Replay{}, err
	}
	registerFlusher(l)
	return l, rep, nil
}

// leadsWithCheckpoint reports whether segment idx begins with a valid
// checkpoint frame.
func (l *Log) leadsWithCheckpoint(idx int) (bool, error) {
	f, err := l.opts.FS.OpenFile(filepath.Join(l.dir, segmentName(idx)), os.O_RDONLY, 0)
	if err != nil {
		return false, fmt.Errorf("wal: open %s: %w", segmentName(idx), err)
	}
	defer f.Close()
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return false, nil // too short to hold any frame
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n < 1 || n > MaxRecordBytes {
		return false, nil
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(f, payload); err != nil {
		return false, nil
	}
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(hdr[4:8]) {
		return false, nil
	}
	return payload[0] == l.opts.CheckpointType, nil
}

func readAll(fs FS, name string) ([]byte, error) {
	f, err := fs.OpenFile(name, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// decodeFrames walks data frame by frame. It returns the records decoded
// before the first bad frame, the offset just past the last good frame,
// and a non-nil error describing the bad frame if one was hit.
func decodeFrames(data []byte) ([]Record, int64, error) {
	var recs []Record
	off := 0
	for off < len(data) {
		if len(data)-off < frameHeader {
			return recs, int64(off), fmt.Errorf("truncated frame header (%d trailing bytes)", len(data)-off)
		}
		n := binary.LittleEndian.Uint32(data[off : off+4])
		if n < 1 || n > MaxRecordBytes {
			return recs, int64(off), fmt.Errorf("frame length %d out of range", n)
		}
		end := off + frameHeader + int(n)
		if end > len(data) || end < off {
			return recs, int64(off), fmt.Errorf("truncated frame payload (want %d bytes, have %d)", n, len(data)-off-frameHeader)
		}
		payload := data[off+frameHeader : end]
		if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(data[off+4:off+8]) {
			return recs, int64(off), errors.New("frame checksum mismatch")
		}
		recs = append(recs, Record{Type: payload[0], Data: append([]byte(nil), payload[1:]...)})
		off = end
	}
	return recs, int64(off), nil
}

// encodeFrame renders one record as a wire frame.
func encodeFrame(rec Record) ([]byte, error) {
	n := 1 + len(rec.Data)
	if n > MaxRecordBytes {
		return nil, fmt.Errorf("wal: record of %d bytes exceeds MaxRecordBytes", n)
	}
	buf := make([]byte, frameHeader+n)
	binary.LittleEndian.PutUint32(buf[0:4], uint32(n))
	buf[frameHeader] = rec.Type
	copy(buf[frameHeader+1:], rec.Data)
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(buf[frameHeader:], castagnoli))
	return buf, nil
}

// openSegment switches the append handle to segment idx, creating it if
// fresh. Caller holds l.mu or is constructing the log.
func (l *Log) openSegment(idx int, fresh bool) error {
	name := filepath.Join(l.dir, segmentName(idx))
	f, err := l.opts.FS.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: open segment %s: %w", name, err)
	}
	l.file, l.name, l.index = f, name, idx
	if fresh {
		l.size = 0
		_ = l.opts.FS.SyncDir(l.dir)
	}
	return nil
}

// flushLocked fsyncs outstanding appends. A failed fsync is sticky: the
// kernel may have dropped the dirty pages, so no later success can prove
// those records durable.
//
//tcrowd:locked Log.mu
func (l *Log) flushLocked() {
	if !l.dirty || l.file == nil || l.sticky != nil {
		return
	}
	if err := l.file.Sync(); err != nil {
		l.sticky = fmt.Errorf("wal: fsync %s: %w", l.name, err)
		return
	}
	l.dirty = false
}

// Append durably adds one record per the configured policy. It reports
// whether the append rotated into a new segment, so the caller can
// schedule compaction.
//
// On a failed or short write Append heals the segment by truncating back
// to the last good frame — otherwise a later successful append would sit
// behind a torn middle and be silently dropped at replay despite having
// been acknowledged. If the heal itself fails the error is sticky and
// every subsequent mutation fails.
func (l *Log) Append(rec Record) (rotated bool, err error) {
	frame, err := encodeFrame(rec)
	if err != nil {
		return false, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	switch {
	case l.closed:
		return false, ErrClosed
	case l.sticky != nil:
		return false, l.sticky
	}

	if l.size > 0 && l.size+int64(len(frame)) > l.opts.SegmentBytes {
		if err := l.sealLocked(); err != nil {
			return false, err
		}
		if err := l.openSegment(l.index+1, true); err != nil {
			l.sticky = err
			return false, err
		}
		rotated = true
	}

	n, werr := l.file.Write(frame)
	if werr != nil || n != len(frame) {
		if werr == nil {
			werr = io.ErrShortWrite
		}
		l.healLocked(werr)
		return rotated, fmt.Errorf("wal: append to %s: %w", l.name, werr)
	}
	l.size += int64(len(frame))

	switch l.opts.Policy {
	case SyncAlways:
		if err := l.file.Sync(); err != nil {
			l.sticky = fmt.Errorf("wal: fsync %s: %w", l.name, err)
			return rotated, l.sticky
		}
	default:
		l.dirty = true
	}
	return rotated, nil
}

// healLocked truncates the current segment back to the last good frame
// after a failed write. If that fails, the log is wedged (sticky error):
// better to refuse new appends than to ack records replay will drop.
//
//tcrowd:locked Log.mu
func (l *Log) healLocked(cause error) {
	_ = l.file.Close()
	if err := l.opts.FS.Truncate(l.name, l.size); err != nil {
		l.sticky = fmt.Errorf("wal: segment %s torn at %d and truncate failed (%v) after write error: %w", l.name, l.size, err, cause)
		return
	}
	f, err := l.opts.FS.OpenFile(l.name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		l.sticky = fmt.Errorf("wal: reopen %s after heal: %w", l.name, err)
		return
	}
	l.file = f
}

// sealLocked makes the current segment durable and closes it.
//
//tcrowd:locked Log.mu
func (l *Log) sealLocked() error {
	if err := l.file.Sync(); err != nil {
		l.sticky = fmt.Errorf("wal: fsync %s at seal: %w", l.name, err)
		return l.sticky
	}
	l.dirty = false
	if err := l.file.Close(); err != nil {
		return fmt.Errorf("wal: close %s: %w", l.name, err)
	}
	return nil
}

// Sync forces outstanding appends to stable storage regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.sticky != nil {
		return l.sticky
	}
	l.dirty = true
	l.flushLocked()
	return l.sticky
}

// Compact rewrites the log as a fresh segment whose first record is the
// given checkpoint (its Type is forced to Options.CheckpointType), then
// deletes every older segment. The caller must serialise Compact against
// its own appends so the checkpoint state and the append stream agree.
//
// Crash safety: the new segment is staged as a temp file, synced, then
// renamed into place. Before the rename the temp file is invisible to
// replay; after it, replay starts at the new checkpoint and stale older
// segments (even partially deleted ones) are ignored.
func (l *Log) Compact(checkpoint Record) error {
	checkpoint.Type = l.opts.CheckpointType
	frame, err := encodeFrame(checkpoint)
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	switch {
	case l.closed:
		return ErrClosed
	case l.sticky != nil:
		return l.sticky
	}

	fs := l.opts.FS
	newIdx := l.index + 1
	final := filepath.Join(l.dir, segmentName(newIdx))
	tmp := final + ".tmp"
	tf, err := fs.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: compact: create %s: %w", tmp, err)
	}
	if _, err := tf.Write(frame); err != nil {
		tf.Close()
		_ = fs.Remove(tmp)
		return fmt.Errorf("wal: compact: write checkpoint: %w", err)
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		_ = fs.Remove(tmp)
		return fmt.Errorf("wal: compact: sync checkpoint: %w", err)
	}
	if err := tf.Close(); err != nil {
		return fmt.Errorf("wal: compact: close checkpoint: %w", err)
	}
	if err := fs.Rename(tmp, final); err != nil {
		_ = fs.Remove(tmp)
		return fmt.Errorf("wal: compact: publish %s: %w", final, err)
	}
	_ = fs.SyncDir(l.dir)

	// The checkpoint is live. Switch appends over, then delete the
	// superseded segments; a crash mid-delete leaves stale segments that
	// replay already ignores.
	oldIdx := l.index
	if err := l.sealLocked(); err != nil {
		return err
	}
	if err := l.openSegment(newIdx, false); err != nil {
		l.sticky = err
		return err
	}
	l.size = int64(len(frame))
	for idx := oldIdx; idx >= 1; idx-- {
		p := filepath.Join(l.dir, segmentName(idx))
		if err := fs.Remove(p); err != nil {
			if os.IsNotExist(err) {
				break // older ones were reaped by a previous compaction
			}
			return fmt.Errorf("wal: compact: remove %s: %w", p, err)
		}
	}
	_ = fs.SyncDir(l.dir)
	return nil
}

// Segments lists the current segment file names in index order (tests
// and diagnostics).
func (l *Log) Segments() ([]string, error) {
	l.mu.Lock()
	fs := l.opts.FS
	dir := l.dir
	l.mu.Unlock()
	entries, err := fs.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if segmentRE.MatchString(e.Name()) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// Close flushes and fsyncs outstanding appends regardless of policy,
// deregisters the log from the shared group-commit flusher, and closes
// the segment. It is idempotent.
func (l *Log) Close() error {
	unregisterFlusher(l)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.file == nil {
		return nil
	}
	var err error
	if l.sticky == nil {
		if serr := l.file.Sync(); serr != nil {
			err = fmt.Errorf("wal: fsync %s at close: %w", l.name, serr)
		}
	} else {
		err = l.sticky
	}
	if cerr := l.file.Close(); cerr != nil && err == nil {
		err = cerr
	}
	l.file = nil
	return err
}
