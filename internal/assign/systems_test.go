package assign

import (
	"testing"

	"tcrowd/internal/simulate"
	"tcrowd/internal/stats"
	"tcrowd/internal/tabular"
)

func refreshWorkload(seed int64) (*simulate.Dataset, *tabular.AnswerLog) {
	ds := simulate.Generate(stats.NewRNG(seed), simulate.TableConfig{
		Rows: 20, Cols: 6, CatRatio: 0.5,
		Population: simulate.PopulationConfig{N: 15},
	})
	return ds, simulate.NewCrowd(ds, seed+1).FixedAssignment(4)
}

// TestRefreshStreamsGrownLog pins the streaming fast path: refreshing on
// the same log object grown in place keeps the fitted model and ingests
// only the suffix, instead of rebuilding a new model per refresh.
func TestRefreshStreamsGrownLog(t *testing.T) {
	ds, log := refreshWorkload(500)
	sys := NewTCrowdSystem(1)
	if err := sys.Refresh(ds.Table, log); err != nil {
		t.Fatal(err)
	}
	first := sys.Model()
	if first == nil {
		t.Fatal("no model after first refresh")
	}

	crowd := simulate.NewCrowd(ds, 502)
	for round := 0; round < 3; round++ {
		crowd.AppendBatch(log, 30)
		if err := sys.Refresh(ds.Table, log); err != nil {
			t.Fatal(err)
		}
		if sys.Model() != first {
			t.Fatalf("round %d: refresh rebuilt the model instead of streaming", round)
		}
	}
	if got, want := first.NumAnswersUsed(), log.Len(); got != want {
		t.Fatalf("model holds %d answers, log has %d", got, want)
	}

	// A refresh with no new answers is a no-op: the polish and the state
	// rebuild (Estimates + BuildErrorModel) are skipped entirely.
	stBefore := sys.st
	if err := sys.Refresh(ds.Table, log); err != nil {
		t.Fatal(err)
	}
	if sys.Model() != first || sys.st != stBefore {
		t.Fatal("no-growth refresh re-ran inference")
	}
	if cells := sys.Select(ds.Workers[0].ID, 4, log); len(cells) == 0 {
		t.Fatal("streamed system selects no tasks")
	}

	// A different log object (even with identical content) must trigger a
	// rebuild, not a bogus incremental ingest.
	clone := log.Clone()
	simulate.NewCrowd(ds, 503).AppendBatch(clone, 10)
	if err := sys.Refresh(ds.Table, clone); err != nil {
		t.Fatal(err)
	}
	if sys.Model() == first {
		t.Fatal("refresh on a foreign log reused the streamed model")
	}
}

// TestRefreshStreamingMatchesRebuild checks the streamed system produces a
// usable state equivalent in shape to a rebuilt one (estimates present for
// every answered cell).
func TestRefreshStreamingMatchesRebuild(t *testing.T) {
	ds, log := refreshWorkload(510)
	streamed := NewTCrowdSystem(1)
	if err := streamed.Refresh(ds.Table, log); err != nil {
		t.Fatal(err)
	}
	crowd := simulate.NewCrowd(ds, 512)
	crowd.AppendBatch(log, 40)
	if err := streamed.Refresh(ds.Table, log); err != nil {
		t.Fatal(err)
	}

	rebuilt := NewTCrowdSystem(1)
	if err := rebuilt.Refresh(ds.Table, log); err != nil {
		t.Fatal(err)
	}

	se, re := streamed.Estimates(), rebuilt.Estimates()
	for i := 0; i < ds.Table.NumRows(); i++ {
		for j := 0; j < ds.Table.NumCols(); j++ {
			if (se[i][j].IsNone()) != (re[i][j].IsNone()) {
				t.Fatalf("estimate presence diverged at (%d,%d)", i, j)
			}
		}
	}
}
