package platform

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tcrowd/api"
	"tcrowd/internal/shard"
	"tcrowd/internal/tabular"
)

// TestErrorCodeTable pins the exhaustive sentinel → (HTTP status, code,
// retryable) mapping: every platform/shard sentinel resolves to exactly
// one triple, wrapped or not, and the published ErrorCodes table lists
// each code exactly once.
func TestErrorCodeTable(t *testing.T) {
	cases := []struct {
		err       error
		status    int
		code      string
		retryable bool
	}{
		{ErrNoProject, http.StatusNotFound, api.CodeNoProject, false},
		{ErrNoSnapshot, http.StatusNotFound, api.CodeNoSnapshot, true},
		{ErrGenerationGone, http.StatusGone, api.CodeGenerationGone, false},
		{ErrDuplicateID, http.StatusConflict, api.CodeDuplicateProject, false},
		{ErrAlreadyAnswered, http.StatusConflict, api.CodeAlreadyAnswered, false},
		{ErrDurability, http.StatusServiceUnavailable, api.CodeDurabilityFailure, true},
		{ErrWorkerBanned, http.StatusForbidden, api.CodeWorkerBanned, false},
		{ErrRateLimited, http.StatusTooManyRequests, api.CodeRateLimited, true},
		{ErrNotHome, http.StatusMisdirectedRequest, api.CodeNotHome, false},
		{ErrReplicaStale, http.StatusServiceUnavailable, api.CodeReplicaStale, true},
		{shard.ErrShardSaturated, http.StatusTooManyRequests, api.CodeShardSaturated, true},
		{shard.ErrClosed, http.StatusServiceUnavailable, api.CodeShuttingDown, true},
		{shard.ErrJobPanicked, http.StatusInternalServerError, api.CodeInternal, false},
	}
	if len(cases) != len(errTable) {
		t.Fatalf("sentinel table has %d rows, test covers %d — keep them in sync", len(errTable), len(cases))
	}
	for _, c := range cases {
		for _, err := range []error{c.err, fmt.Errorf("wrapped: %w", c.err)} {
			spec := classifyErr(err)
			if spec.status != c.status || spec.code != c.code || spec.retryable != c.retryable {
				t.Errorf("classify(%v) = (%d, %s, %v), want (%d, %s, %v)",
					err, spec.status, spec.code, spec.retryable, c.status, c.code, c.retryable)
			}
		}
	}
	// Unknown errors fall back to bad_request.
	if spec := classifyErr(errors.New("anything else")); spec.status != http.StatusBadRequest || spec.code != api.CodeBadRequest {
		t.Errorf("fallback spec: %+v", spec)
	}
	// The published table lists every code exactly once.
	seen := map[string]int{}
	for _, ec := range ErrorCodes() {
		seen[ec.Code]++
	}
	for _, c := range cases {
		if seen[c.code] != 1 {
			t.Errorf("code %s appears %d times in ErrorCodes", c.code, seen[c.code])
		}
	}
	for _, extra := range []string{api.CodeBadRequest, api.CodeBatchRejected} {
		if seen[extra] != 1 {
			t.Errorf("code %s appears %d times in ErrorCodes", extra, seen[extra])
		}
	}
}

// TestNotHomeEnvelope pins the cluster-routing error contract: a
// *NotHomeError renders as 421 not_home with the home node's base URL in
// the envelope's Home field (what the SDK follows), wrapped or not.
func TestNotHomeEnvelope(t *testing.T) {
	for _, err := range []error{
		&NotHomeError{Project: "p1", Home: "http://peer-2:8080"},
		fmt.Errorf("edge: %w", &NotHomeError{Project: "p1", Home: "http://peer-2:8080"}),
	} {
		rec := httptest.NewRecorder()
		writeErr(rec, err)
		if rec.Code != http.StatusMisdirectedRequest {
			t.Fatalf("status %d, want 421", rec.Code)
		}
		var env api.ErrorEnvelope
		if derr := json.NewDecoder(rec.Body).Decode(&env); derr != nil {
			t.Fatal(derr)
		}
		if env.Err.Code != api.CodeNotHome || env.Err.Retryable {
			t.Fatalf("envelope %+v, want not_home non-retryable", env.Err)
		}
		if env.Err.Home != "http://peer-2:8080" {
			t.Fatalf("envelope Home %q, want the home base URL", env.Err.Home)
		}
	}
	// A bare sentinel (no concrete NotHomeError) must not invent a Home.
	rec := httptest.NewRecorder()
	writeErr(rec, ErrReplicaStale)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("replica_stale status %d, want 503", rec.Code)
	}
	var env api.ErrorEnvelope
	if err := json.NewDecoder(rec.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Err.Code != api.CodeReplicaStale || !env.Err.Retryable || env.Err.Home != "" {
		t.Fatalf("envelope %+v, want retryable replica_stale without Home", env.Err)
	}
}

// decodeEnvelope reads a typed error envelope off a response.
func decodeEnvelope(t *testing.T, resp *http.Response) api.Error {
	t.Helper()
	defer resp.Body.Close()
	var env api.ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("decoding envelope: %v", err)
	}
	return env.Err
}

// TestTasksCountParsing pins the strconv fix: trailing garbage and
// negative counts are rejected with a typed bad_request instead of
// silently accepted (fmt.Sscanf "%d" stopped at the first non-digit).
func TestTasksCountParsing(t *testing.T) {
	srv, _ := newTestServer(t)
	postJSON(t, srv.URL+"/v1/projects", projectBody).Body.Close()

	for _, bad := range []string{"5x", "-1", "1.5", "0x10"} {
		resp, err := http.Get(srv.URL + "/v1/projects/celebs/tasks?worker=w1&count=" + bad)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("count=%q status %d", bad, resp.StatusCode)
		}
		if e := decodeEnvelope(t, resp); e.Code != api.CodeBadRequest {
			t.Fatalf("count=%q code %q", bad, e.Code)
		}
	}
	resp, err := http.Get(srv.URL + "/v1/projects/celebs/tasks?worker=w1&count=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("valid count status %d", resp.StatusCode)
	}
}

// TestV1BatchSingleRefresh is the acceptance-criterion batch test: a
// 200-answer batch POST records every answer and enqueues AT MOST ONE
// coalesced shard refresh (asserted via shard metrics), even at the
// every-answer refresh cadence where 200 single submissions would have
// touched the queue 200 times.
func TestV1BatchSingleRefresh(t *testing.T) {
	p := NewWithOptions(61, Options{Workers: 1, QueueDepth: 64})
	defer p.Close()
	srv := httptest.NewServer(NewServer(p))
	defer srv.Close()
	seedProject(t, p, "big") // RefreshEvery: 1
	waitFor(t, func() bool {
		m := p.ShardMetrics()[0]
		return m.Depth == 0 && m.Completed == m.Enqueued
	})
	before := p.ShardMetrics()[0]

	var sb strings.Builder
	sb.WriteString(`{"answers":[`)
	for i := 0; i < 200; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `{"worker":"bw%03d","row":1,"column":"price","number":%d}`, i, 50+i%7)
	}
	sb.WriteString(`]}`)
	resp := postJSON(t, srv.URL+"/v1/projects/big/answers", sb.String())
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	var out api.SubmitAnswersResponse
	decodeBody(t, resp, &out)
	if out.Recorded != 200 || out.Status != "recorded" || out.Refresh != api.RefreshEnqueued {
		t.Fatalf("batch response: %+v", out)
	}
	after := p.ShardMetrics()[0]
	if touched := (after.Enqueued + after.Coalesced) - (before.Enqueued + before.Coalesced); touched > 1 {
		t.Fatalf("200-answer batch touched the queue %d times, want <= 1", touched)
	}
	st, _ := p.Stats("big")
	proj, _ := p.Project("big")
	for _, w := range []string{"bw000", "bw123", "bw199"} {
		if !proj.Log.HasAnswered(tabular.WorkerID(w), tabular.Cell{Row: 1, Col: 1}) {
			t.Fatalf("batch lost answer from %s", w)
		}
	}
	// The single coalesced refresh absorbs the whole batch.
	waitFor(t, func() bool {
		res, err := p.Snapshot("big")
		return err == nil && res.AnswersSeen == st.Answers
	})
}

// TestV1BatchAtomicUnderWedge: an accepted batch whose refresh is shed by
// a saturated shard still records everything, answers 201 (v1 has no
// per-answer 429) and reports refresh:"deferred" with a Retry-After hint.
func TestV1BatchDeferredRefreshUnderWedge(t *testing.T) {
	p := NewWithOptions(62, Options{Workers: 1, QueueDepth: 1})
	defer p.Close()
	srv := httptest.NewServer(NewServer(p))
	defer srv.Close()
	seedProject(t, p, "a")

	release := wedge(t, p, "a", 1)
	defer release()

	resp := postJSON(t, srv.URL+"/v1/projects/a/answers",
		`{"answers":[{"worker":"w7","row":2,"column":"price","number":12},
		             {"worker":"w8","row":2,"column":"price","number":13}]}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("wedged batch status %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("deferred refresh without Retry-After hint")
	}
	var out api.SubmitAnswersResponse
	decodeBody(t, resp, &out)
	if out.Recorded != 2 || out.Refresh != api.RefreshDeferred {
		t.Fatalf("wedged batch response: %+v", out)
	}
	proj, _ := p.Project("a")
	if !proj.Log.HasAnswered("w7", tabular.Cell{Row: 2, Col: 1}) ||
		!proj.Log.HasAnswered("w8", tabular.Cell{Row: 2, Col: 1}) {
		t.Fatal("deferred batch lost answers")
	}
}

// TestSubmitBatchRejectsAtomically pins platform-level batch atomicity:
// one invalid row rejects the whole batch with per-item detail and
// records nothing.
func TestSubmitBatchRejectsAtomically(t *testing.T) {
	p := New(63)
	defer p.Close()
	if _, err := p.CreateProject("a", demoSchema(), ProjectConfig{Rows: 3}); err != nil {
		t.Fatal(err)
	}
	answers := []tabular.Answer{
		{Worker: "w1", Cell: tabular.Cell{Row: 0, Col: 1}, Value: tabular.NumberValue(9)},
		{Worker: "w1", Cell: tabular.Cell{Row: 9, Col: 1}, Value: tabular.NumberValue(9)}, // bad row
		{Worker: "w1", Cell: tabular.Cell{Row: 0, Col: 1}, Value: tabular.NumberValue(9)}, // intra-batch dup
	}
	_, err := p.SubmitBatch("a", answers)
	var be *BatchError
	if !errors.As(err, &be) || len(be.Items) != 2 {
		t.Fatalf("batch error: %v", err)
	}
	if be.Items[0].Index != 1 || be.Items[1].Index != 2 {
		t.Fatalf("batch item indexes: %+v", be.Items)
	}
	if !errors.Is(be.Items[1].Err, ErrAlreadyAnswered) {
		t.Fatalf("intra-batch dup error: %v", be.Items[1].Err)
	}
	st, _ := p.Stats("a")
	if st.Answers != 0 {
		t.Fatalf("rejected batch recorded %d answers", st.Answers)
	}
}

// TestV1EstimatesPagination walks ?cursor=&limit= pages over HTTP and
// checks the concatenation equals the unpaginated read, with every page
// pinned to the same generation by the cursor.
func TestV1EstimatesPagination(t *testing.T) {
	p := New(64)
	defer p.Close()
	srv := httptest.NewServer(NewServer(p))
	defer srv.Close()
	if _, err := p.CreateProject("a", demoSchema(), ProjectConfig{Rows: 4}); err != nil {
		t.Fatal(err)
	}
	for _, w := range []tabular.WorkerID{"w1", "w2", "w3"} {
		for row := 0; row < 4; row++ {
			if err := p.Submit("a", w, row, "category", tabular.LabelValue(row%3)); err != nil {
				t.Fatal(err)
			}
			if err := p.Submit("a", w, row, "price", tabular.NumberValue(float64(10*row+1))); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := p.RunInference("a"); err != nil { // publish a full-log generation
		t.Fatal(err)
	}
	get := func(q string) estimatesResp {
		t.Helper()
		resp, err := http.Get(srv.URL + "/v1/projects/a/estimates" + q)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("estimates%s status %d", q, resp.StatusCode)
		}
		var est estimatesResp
		decodeBody(t, resp, &est)
		return est
	}
	full := get("")
	if len(full.Estimates) != 8 || full.NextCursor != "" || full.Generation == 0 {
		t.Fatalf("full read: %d estimates, next %q, generation %d",
			len(full.Estimates), full.NextCursor, full.Generation)
	}
	var walked []estimateJSON
	cursor, pages := "", 0
	for {
		q := "?limit=3"
		if cursor != "" {
			q += "&cursor=" + cursor
		}
		page := get(q)
		walked = append(walked, page.Estimates...)
		if len(page.WorkerQuality) != 3 {
			t.Fatalf("page missing worker quality: %+v", page.WorkerQuality)
		}
		if page.Generation != full.Generation {
			t.Fatalf("page generation %d, walk pinned to %d", page.Generation, full.Generation)
		}
		pages++
		if page.NextCursor == "" {
			break
		}
		cursor = page.NextCursor
	}
	if pages < 3 {
		t.Fatalf("walk took %d pages, want >= 3", pages)
	}
	if len(walked) != len(full.Estimates) {
		t.Fatalf("paged walk got %d estimates, full read %d", len(walked), len(full.Estimates))
	}
	for i := range walked {
		if walked[i].Entity != full.Estimates[i].Entity || walked[i].Column != full.Estimates[i].Column {
			t.Fatalf("walk diverged at %d: %+v vs %+v", i, walked[i], full.Estimates[i])
		}
	}
	// Cursor past the end: empty page, no next.
	if tail := get(fmt.Sprintf("?cursor=%d:9999", full.Generation)); len(tail.Estimates) != 0 || tail.NextCursor != "" {
		t.Fatalf("past-the-end page: %+v", tail)
	}
	// Malformed cursors and conflicting pins are typed bad requests.
	for _, bad := range []string{"?cursor=9999", "?cursor=x:1", "?cursor=1:x", "?cursor=-1:0",
		fmt.Sprintf("?cursor=%d:0&generation=%d", full.Generation, full.Generation+1)} {
		resp, err := http.Get(srv.URL + "/v1/projects/a/estimates" + bad)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("cursor %q status %d", bad, resp.StatusCode)
		}
		if e := decodeEnvelope(t, resp); e.Code != api.CodeBadRequest {
			t.Fatalf("cursor %q code %q", bad, e.Code)
		}
	}
}

// TestTasksNotBlockedByWedgedShard is the acceptance-criterion assignment
// test: with one T-Crowd project's shard fully wedged, GET /tasks for a
// project on another shard answers promptly, and the wedged project
// itself degrades to serving tasks from its stale assignment state
// instead of hanging or failing (before this PR the refresh ran under the
// platform lock on the request goroutine, stalling every project).
func TestTasksNotBlockedByWedgedShard(t *testing.T) {
	p := NewWithOptions(65, Options{Workers: 4, QueueDepth: 1})
	defer p.Close()
	srv := httptest.NewServer(NewServer(p))
	defer srv.Close()

	hotID := "hot-project"
	coldID := ""
	for i := 0; i < 10000; i++ {
		id := fmt.Sprintf("cold-project-%d", i)
		if p.sched.ShardFor(id) != p.sched.ShardFor(hotID) {
			coldID = id
			break
		}
	}
	if coldID == "" {
		t.Fatal("no cold project id found")
	}
	for _, id := range []string{hotID, coldID} {
		if _, err := p.CreateProject(id, demoSchema(), ProjectConfig{Rows: 3, UseTCrowdAssignment: true, RefreshEvery: 1}); err != nil {
			t.Fatal(err)
		}
		for _, w := range []tabular.WorkerID{"w1", "w2", "w3"} {
			if err := p.Submit(id, w, 0, "category", tabular.LabelValue(1)); err != nil {
				t.Fatal(err)
			}
		}
		// Prime the assignment engine so the wedged project has stale
		// state to degrade to.
		if _, err := p.RequestTasks(id, "seed-worker", 1); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool {
		for _, m := range p.ShardMetrics() {
			if m.Depth != 0 || m.Completed != m.Enqueued {
				return false
			}
		}
		return true
	})

	release := wedge(t, p, hotID, 1)
	defer release()

	fetch := func(id string) chan error {
		done := make(chan error, 1)
		go func() {
			resp, err := http.Get(srv.URL + "/v1/projects/" + id + "/tasks?worker=w9&count=2")
			if err != nil {
				done <- err
				return
			}
			defer resp.Body.Close()
			var tasks []Task
			if err := json.NewDecoder(resp.Body).Decode(&tasks); err != nil {
				done <- err
				return
			}
			if resp.StatusCode != http.StatusOK || len(tasks) == 0 {
				done <- fmt.Errorf("%s tasks: status %d, %d tasks", id, resp.StatusCode, len(tasks))
				return
			}
			done <- nil
		}()
		return done
	}

	// Both the cold project AND the wedged project answer promptly: the
	// cold one refreshes on its own shard, the hot one sheds the refresh
	// and serves from stale assignment state.
	for _, id := range []string{coldID, hotID} {
		select {
		case err := <-fetch(id):
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("GET /tasks for %s blocked behind the wedged shard", id)
		}
	}
}

// TestAssignRefreshRunsOnShardWorker pins the routing: a T-Crowd task
// request that crosses the refresh cadence enqueues exactly one assign
// job on the project's home shard (observable in the shard metrics).
func TestAssignRefreshRunsOnShardWorker(t *testing.T) {
	p := New(66)
	defer p.Close()
	if _, err := p.CreateProject("a", demoSchema(), ProjectConfig{Rows: 3, UseTCrowdAssignment: true, RefreshEvery: 1}); err != nil {
		t.Fatal(err)
	}
	sh := p.sched.ShardFor("a")
	before := p.ShardMetrics()[sh]
	if _, err := p.RequestTasks("a", "w1", 2); err != nil {
		t.Fatal(err)
	}
	after := p.ShardMetrics()[sh]
	if after.Enqueued+after.Coalesced == before.Enqueued+before.Coalesced {
		t.Fatal("assign refresh did not route through the shard scheduler")
	}
	if after.Completed == before.Completed {
		t.Fatal("assign refresh did not complete on the shard worker")
	}
}

// TestLegacyRoutesRemoved pins the removal of the pre-v1 unversioned
// aliases (deprecated one release ago): they are no longer registered and
// 404 at the mux.
func TestLegacyRoutesRemoved(t *testing.T) {
	srv, _ := newTestServer(t)
	postJSON(t, srv.URL+"/v1/projects", projectBody).Body.Close()
	for _, path := range []string{"/projects", "/projects/celebs/tasks?worker=w1",
		"/projects/celebs/estimates", "/projects/celebs/snapshot",
		"/projects/celebs/stats", "/stats"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("legacy %s still served: status %d", path, resp.StatusCode)
		}
	}
	resp := postJSON(t, srv.URL+"/projects/celebs/answers",
		`{"worker":"w1","row":0,"column":"Age","number":30}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("legacy POST /answers still served: status %d", resp.StatusCode)
	}
	// The route table carries only /v1 patterns.
	for _, r := range Routes() {
		if !strings.HasPrefix(r.Pattern, "/v1/") {
			t.Fatalf("non-/v1 route in table: %s %s", r.Method, r.Pattern)
		}
	}
}

// TestTasksBoundedWaitBehindBusyShard pins the bounded-wait rule: a task
// request whose assign refresh is queued behind other (slow) work on a
// busy-but-NOT-saturated shard stops waiting after assignRefreshWait and
// serves from the previous assignment state instead of stalling until the
// backlog drains (backpressure only trips on a full queue, so without the
// bound the request would block unboundedly).
func TestTasksBoundedWaitBehindBusyShard(t *testing.T) {
	p := NewWithOptions(67, Options{Workers: 1, QueueDepth: 64})
	defer p.Close()
	if _, err := p.CreateProject("a", demoSchema(), ProjectConfig{Rows: 3, UseTCrowdAssignment: true, RefreshEvery: 1}); err != nil {
		t.Fatal(err)
	}
	for _, w := range []tabular.WorkerID{"w1", "w2", "w3"} {
		if err := p.Submit("a", w, 0, "category", tabular.LabelValue(1)); err != nil {
			t.Fatal(err)
		}
	}
	// Prime the engine, then occupy the worker with a slow job. The queue
	// (depth 64) stays far from full: no backpressure, only backlog.
	if _, err := p.RequestTasks("a", "seed", 1); err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	defer close(gate)
	if err := p.sched.Submit("blocker", func() error { <-gate; return nil }); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return p.ShardMetrics()[0].Depth == 0 }) // blocker occupies the worker
	// Make the engine stale so the task request actually enqueues a
	// refresh (an up-to-date engine skips the shard round trip entirely).
	if err := p.Submit("a", "w4", 1, "price", tabular.NumberValue(8)); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	tasks, err := p.RequestTasks("a", "w9", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) == 0 {
		t.Fatal("no tasks served from stale state")
	}
	if elapsed := time.Since(start); elapsed > assignRefreshWait+5*time.Second {
		t.Fatalf("task request stalled %v behind the busy shard", elapsed)
	}
}

// TestProjectIDRejectsControlCharacters pins the coalescing-key guard: a
// crafted ID containing a control character (which could collide with
// another project's shard job key, built as id+"\x00assign") is rejected
// at creation.
func TestProjectIDRejectsControlCharacters(t *testing.T) {
	p := New(68)
	defer p.Close()
	for _, id := range []string{"p\x00assign", "a\nb", "tab\tid", "del\x7f"} {
		if _, err := p.CreateProject(id, demoSchema(), ProjectConfig{Rows: 1}); err == nil {
			t.Fatalf("project id %q accepted", id)
		}
	}
	if _, err := p.CreateProject("fine-id.v1", demoSchema(), ProjectConfig{Rows: 1}); err != nil {
		t.Fatal(err)
	}
}
