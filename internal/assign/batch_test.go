package assign

import (
	"math"
	"testing"

	"tcrowd/internal/tabular"
)

func TestExactBatchMatchesGreedyOnAdditiveGains(t *testing.T) {
	// With the per-cell additive objective, greedy top-K is optimal, so
	// exact search must agree on the total gain (sets may tie-break
	// differently).
	_, m := fittedModel(t, 90)
	u := m.WorkerIDs[0]
	cands := m.Table.Cells()[:18]
	for _, k := range []int{1, 3, 6} {
		exactCells, exactGain := ExactBatch(m, u, cands, k)
		greedyCells, greedyGain := GreedyBatch(m, u, cands, k)
		if len(exactCells) != k || len(greedyCells) != k {
			t.Fatalf("k=%d: sizes %d/%d", k, len(exactCells), len(greedyCells))
		}
		if math.Abs(exactGain-greedyGain) > 1e-9 {
			t.Fatalf("k=%d: exact %v vs greedy %v", k, exactGain, greedyGain)
		}
	}
}

func TestExactBatchEdgeCases(t *testing.T) {
	_, m := fittedModel(t, 91)
	u := m.WorkerIDs[0]
	cands := m.Table.Cells()[:5]
	if cells, _ := ExactBatch(m, u, cands, 0); cells != nil {
		t.Fatal("k=0 should select nothing")
	}
	if cells, _ := ExactBatch(m, u, nil, 3); cells != nil {
		t.Fatal("no candidates should select nothing")
	}
	// k larger than the pool clamps.
	cells, _ := ExactBatch(m, u, cands, 99)
	if len(cells) != 5 {
		t.Fatalf("clamped k: %d", len(cells))
	}
	seen := map[tabular.Cell]bool{}
	for _, c := range cells {
		if seen[c] {
			t.Fatal("duplicate cell in batch")
		}
		seen[c] = true
	}
}

func TestGreedyBatchGainIsSumOfInfoGains(t *testing.T) {
	_, m := fittedModel(t, 92)
	u := m.WorkerIDs[0]
	cands := m.Table.Cells()[:10]
	cells, total := GreedyBatch(m, u, cands, 4)
	want := 0.0
	for _, c := range cells {
		want += InfoGain(m, u, c)
	}
	if math.Abs(total-want) > 1e-12 {
		t.Fatalf("total %v want %v", total, want)
	}
}
