package stats

import (
	"math"
	"testing"
)

func TestLogErfMatchesNaive(t *testing.T) {
	for _, x := range []float64{1e-8, 1e-3, 0.1, 0.5, 1, 2, 5} {
		want := math.Log(math.Erf(x))
		almostEqual(t, LogErf(x), want, 1e-12, "LogErf small/medium")
	}
}

func TestLogErfLargeArgument(t *testing.T) {
	// For large x, ln erf(x) ~ -erfc(x); the naive log would round to 0
	// exactly. Check against the asymptotic erfc expansion.
	x := 8.0
	erfc := math.Exp(-x*x) / (x * math.SqrtPi) * (1 - 1/(2*x*x))
	almostEqual(t, LogErf(x), -erfc, 1e-30, "LogErf large")
	if LogErf(0) != math.Inf(-1) || LogErf(-1) != math.Inf(-1) {
		t.Fatal("LogErf must be -Inf for x <= 0")
	}
}

func TestLogErfcMatchesNaive(t *testing.T) {
	for _, x := range []float64{-2, -0.5, 0, 0.5, 1, 3, 10, 19} {
		want := math.Log(math.Erfc(x))
		almostEqual(t, LogErfc(x), want, 1e-9, "LogErfc moderate")
	}
}

func TestLogErfcAsymptotic(t *testing.T) {
	// erfc underflows near x=27; the asymptotic branch must still produce
	// finite, monotone values.
	prev := LogErfc(20)
	for _, x := range []float64{25, 30, 40, 100} {
		got := LogErfc(x)
		if math.IsInf(got, 0) || math.IsNaN(got) {
			t.Fatalf("LogErfc(%v) not finite: %v", x, got)
		}
		if got >= prev {
			t.Fatalf("LogErfc must decrease: f(%v)=%v >= %v", x, got, prev)
		}
		prev = got
	}
	// Branch agreement: at x=20 erfc is still representable (~5e-176), so
	// the naive log and the asymptotic expansion must coincide.
	naive := math.Log(math.Erfc(20))
	ix2 := 1 / (20.0 * 20.0)
	asym := -400 - math.Log(20*math.Sqrt(math.Pi)) + math.Log(1-0.5*ix2+0.75*ix2*ix2)
	almostEqual(t, naive, asym, 1e-5, "branch agreement at x=20")
}

func TestDErfDx(t *testing.T) {
	// Central difference check.
	for _, x := range []float64{0, 0.3, 1, 2} {
		h := 1e-6
		num := (math.Erf(x+h) - math.Erf(x-h)) / (2 * h)
		almostEqual(t, DErfDx(x), num, 1e-8, "DErfDx")
	}
}

func TestNormalQuantile(t *testing.T) {
	// Golden values from standard normal tables.
	almostEqual(t, NormalQuantile(0.5), 0, 1e-12, "median")
	almostEqual(t, NormalQuantile(0.975), 1.959963985, 1e-6, "97.5%")
	almostEqual(t, NormalQuantile(0.84134474), 1.0, 1e-5, "84.13%")
	almostEqual(t, NormalQuantile(0.05), -1.644853627, 1e-6, "5%")
	defer func() {
		if recover() == nil {
			t.Fatal("NormalQuantile(0) should panic")
		}
	}()
	NormalQuantile(0)
}

func TestGammaIncLowerGolden(t *testing.T) {
	// Reference values computed from the definition (e.g. P(1,x)=1-e^-x).
	almostEqual(t, GammaIncLower(1, 1), 1-math.Exp(-1), 1e-12, "P(1,1)")
	almostEqual(t, GammaIncLower(1, 5), 1-math.Exp(-5), 1e-12, "P(1,5)")
	// P(0.5, x) = erf(sqrt(x)).
	for _, x := range []float64{0.1, 1, 2, 7} {
		almostEqual(t, GammaIncLower(0.5, x), math.Erf(math.Sqrt(x)), 1e-10, "P(0.5,x)=erf")
	}
	// Complementarity.
	for _, a := range []float64{0.3, 1, 2.5, 10} {
		for _, x := range []float64{0.2, 1, 4, 20} {
			s := GammaIncLower(a, x) + GammaIncUpper(a, x)
			almostEqual(t, s, 1, 1e-10, "P+Q=1")
		}
	}
	if !math.IsNaN(GammaIncLower(-1, 1)) || !math.IsNaN(GammaIncUpper(0, 1)) {
		t.Fatal("invalid a must give NaN")
	}
	if GammaIncLower(2, 0) != 0 || GammaIncUpper(2, 0) != 1 {
		t.Fatal("x=0 boundary wrong")
	}
}

func TestChiSquareCDFGolden(t *testing.T) {
	// Chi-square table: P(X <= 3.841) = 0.95 for k=1; P(X <= 5.991) = 0.95
	// for k=2; P(X <= 18.307) = 0.95 for k=10.
	almostEqual(t, ChiSquareCDF(3.841458821, 1), 0.95, 1e-6, "k=1")
	almostEqual(t, ChiSquareCDF(5.991464547, 2), 0.95, 1e-6, "k=2")
	almostEqual(t, ChiSquareCDF(18.30703805, 10), 0.95, 1e-6, "k=10")
	if ChiSquareCDF(-1, 3) != 0 {
		t.Fatal("negative x must have CDF 0")
	}
}

func TestChiSquareQuantileInvertsCDF(t *testing.T) {
	for _, k := range []float64{1, 2, 5, 10, 37, 100} {
		for _, p := range []float64{0.025, 0.05, 0.5, 0.9, 0.975, 0.999} {
			x := ChiSquareQuantile(p, k)
			almostEqual(t, ChiSquareCDF(x, k), p, 1e-8, "quantile/CDF round trip")
		}
	}
	// Golden: chi2_{0.975}(1) = 5.0239 (CATD's default confidence level).
	almostEqual(t, ChiSquareQuantile(0.975, 1), 5.023886187, 1e-5, "0.975 k=1")
	if ChiSquareQuantile(0, 3) != 0 {
		t.Fatal("p=0 should be 0")
	}
}
