package core

import (
	"math"
	"runtime"
	"testing"

	"tcrowd/internal/ingest"
	"tcrowd/internal/simulate"
	"tcrowd/internal/stats"
)

func TestParallelInferMatchesSerial(t *testing.T) {
	ds, log := smallDataset(1000)
	serial, err := Infer(ds.Table, log, Options{MaxIter: 8})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Infer(ds.Table, log, Options{MaxIter: 8, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Results agree up to floating-point reduction order: estimates must
	// be identical, parameters very close.
	se, pe := serial.Estimates(), parallel.Estimates()
	for i := 0; i < ds.Table.NumRows(); i++ {
		for j := 0; j < ds.Table.NumCols(); j++ {
			a, b := se[i][j], pe[i][j]
			if a.Kind != b.Kind {
				t.Fatalf("estimate kind diverged at (%d,%d)", i, j)
			}
			if a.Kind == 1 && a.L != b.L { // label
				t.Fatalf("label diverged at (%d,%d): %v vs %v", i, j, a.L, b.L)
			}
			if a.Kind == 2 && math.Abs(a.X-b.X) > 1e-4 { // number
				t.Fatalf("number diverged at (%d,%d): %v vs %v", i, j, a.X, b.X)
			}
		}
	}
	for k := range serial.Phi {
		if math.Abs(math.Log(serial.Phi[k])-math.Log(parallel.Phi[k])) > 1e-3 {
			t.Fatalf("phi[%d] diverged: %v vs %v", k, serial.Phi[k], parallel.Phi[k])
		}
	}
}

func TestParallelQValueMatchesSerial(t *testing.T) {
	ds, log := smallDataset(1100)
	m, err := newModel(ds.Table, log, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m.eStep()
	alpha := append([]float64(nil), m.Alpha...)
	beta := append([]float64(nil), m.Beta...)
	phi := append([]float64(nil), m.Phi...)
	want := m.paramLogPrior(alpha, beta, phi) + m.qValueRange(alpha, beta, phi, 0, len(m.ilog.Ans))
	for _, workers := range []int{2, 3, 8} {
		got := m.qValueParallel(alpha, beta, phi, workers)
		if math.Abs(got-want) > 1e-6*math.Abs(want) {
			t.Fatalf("workers=%d: %v want %v", workers, got, want)
		}
	}
}

func TestParallelGradMatchesSerial(t *testing.T) {
	ds, log := smallDataset(1200)
	m, err := newModel(ds.Table, log, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m.eStep()
	alpha, beta, phi := m.Alpha, m.Beta, m.Phi
	ga := make([]float64, len(alpha))
	gb := make([]float64, len(beta))
	gp := make([]float64, len(phi))
	m.priorGradLog(alpha, beta, phi, ga, gb, gp)
	m.qGradLogRange(alpha, beta, phi, 0, len(m.ilog.Ans), ga, gb, gp)

	pa, pb, pp := m.qGradLogParallel(alpha, beta, phi, 4)
	check := func(name string, a, b []float64) {
		t.Helper()
		for i := range a {
			if math.Abs(a[i]-b[i]) > 1e-8*(1+math.Abs(a[i])) {
				t.Fatalf("%s[%d]: %v vs %v", name, i, a[i], b[i])
			}
		}
	}
	check("ga", ga, pa)
	check("gb", gb, pb)
	check("gp", gp, pp)
}

func TestParallelismClamp(t *testing.T) {
	ds, log := smallDataset(1300)
	m, err := newModel(ds.Table, log, Options{Parallelism: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.effectiveParallelism(); got < 1 || got > 10000 {
		t.Fatalf("effective parallelism %d", got)
	}
	m2, _ := newModel(ds.Table, log, Options{})
	if m2.effectiveParallelism() != 1 {
		t.Fatal("default must be serial")
	}
}

func TestParallelELBOMonotone(t *testing.T) {
	ds := simulate.Generate(stats.NewRNG(1400), simulate.TableConfig{
		Rows: 40, Cols: 8, CatRatio: 0.5,
		Population: simulate.PopulationConfig{N: 30},
	})
	log := simulate.NewCrowd(ds, 1401).FixedAssignment(4)
	m, err := Infer(ds.Table, log, Options{Parallelism: 4, TrackObjective: true, MaxIter: 10})
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k < len(m.ObjTrace); k++ {
		if m.ObjTrace[k] < m.ObjTrace[k-1]-1e-6 {
			t.Fatalf("parallel ELBO decreased at %d", k)
		}
	}
}

// TestAutoParallelism pins the Parallelism resolution rules: 0 is auto
// (serial below AutoParallelMinAnswers, GOMAXPROCS at or above it), 1 is
// the explicit serial opt-out.
func TestAutoParallelism(t *testing.T) {
	ds, log := equivDataset(2060, 20)
	m, err := Infer(ds.Table, log, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.ilog.Ans) >= AutoParallelMinAnswers {
		t.Fatalf("test premise broken: workload has %d answers", len(m.ilog.Ans))
	}
	if got := m.effectiveParallelism(); got != 1 {
		t.Fatalf("auto parallelism on a small log = %d, want 1", got)
	}

	// Simulate a store past the threshold (only the length is read).
	m.ilog.Ans = make([]ingest.Answer, AutoParallelMinAnswers)
	want := runtime.GOMAXPROCS(0)
	if got := m.effectiveParallelism(); got != want {
		t.Fatalf("auto parallelism on a big log = %d, want GOMAXPROCS (%d)", got, want)
	}
	m.Opts.Parallelism = 1 // explicit opt-out wins over auto
	if got := m.effectiveParallelism(); got != 1 {
		t.Fatalf("explicit serial opt-out = %d, want 1", got)
	}
	m.Opts.Parallelism = want + 7 // explicit counts cap at GOMAXPROCS
	if got := m.effectiveParallelism(); got != want {
		t.Fatalf("oversubscribed parallelism = %d, want %d", got, want)
	}
}
