package tcrowd_test

import (
	"fmt"

	"tcrowd"
)

// ExampleInfer runs truth inference over a tiny hand-built answer log.
func ExampleInfer() {
	schema := tcrowd.Schema{
		Key: "Picture",
		Columns: []tcrowd.Column{
			{Name: "Nationality", Type: tcrowd.Categorical, Labels: []string{"US", "CN", "GB"}},
			{Name: "Age", Type: tcrowd.Continuous, Min: 0, Max: 120},
		},
	}
	table := tcrowd.NewTable(schema, 1)

	log := tcrowd.NewAnswerLog()
	for _, w := range []tcrowd.WorkerID{"w1", "w2", "w3"} {
		log.Add(tcrowd.Answer{Worker: w, Cell: tcrowd.Cell{Row: 0, Col: 0}, Value: tcrowd.LabelValue(1)})
	}
	for i, age := range []float64{44, 45, 46} {
		w := tcrowd.WorkerID(fmt.Sprintf("w%d", i+1))
		log.Add(tcrowd.Answer{Worker: w, Cell: tcrowd.Cell{Row: 0, Col: 1}, Value: tcrowd.NumberValue(age)})
	}

	res, err := tcrowd.Infer(table, log, tcrowd.InferOptions{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	nat := res.EstimateAt(tcrowd.Cell{Row: 0, Col: 0})
	age := res.EstimateAt(tcrowd.Cell{Row: 0, Col: 1})
	fmt.Printf("nationality=%s age=%.0f\n", schema.Columns[0].Labels[nat.L], age.X)
	// Output: nationality=CN age=45
}

// ExampleNewAssigner drives one round of online task assignment on a
// simulated workload.
func ExampleNewAssigner() {
	sim, err := tcrowd.StandInDataset("Restaurant", 1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	log := sim.Collect(1) // seed every task with one answer

	a := tcrowd.NewAssigner(sim.Table(), tcrowd.AssignOptions{Policy: tcrowd.PolicyStructureAware, Seed: 2})
	if err := a.Observe(log); err != nil {
		fmt.Println("error:", err)
		return
	}
	cells, err := a.Next(sim.Workers()[0], 5)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("assigned %d tasks\n", len(cells))
	// Output: assigned 5 tasks
}

// ExampleErrorRate scores estimates against the planted ground truth of a
// simulated workload.
func ExampleErrorRate() {
	sim := tcrowd.SyntheticDataset(tcrowd.SyntheticConfig{Rows: 20, Cols: 4, CatRatio: 0.5, Workers: 15}, 3)
	log := sim.Collect(5)
	res, err := tcrowd.Infer(sim.Table(), log, tcrowd.InferOptions{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	er := tcrowd.ErrorRate(sim.Table(), res.Estimates, log)
	fmt.Printf("error rate below one in three: %v\n", er < 1.0/3)
	// Output: error rate below one in three: true
}
