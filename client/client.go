// Package client is the official Go SDK for the tcrowd-server /v1 wire
// API (package api defines the shared types). It supports contexts on
// every call, surfaces server errors as typed *APIError values mirroring
// the error envelope, honours Retry-After backoff automatically on 429
// responses, and offers batch submission helpers.
//
//	c := client.New("http://127.0.0.1:8080")
//	err := c.CreateProject(ctx, api.CreateProjectRequest{ID: "books", ...})
//	tasks, err := c.Tasks(ctx, "books", "w1", 4)
//	res, err := c.SubmitAnswers(ctx, "books", batch) // one POST, one refresh
//	est, err := c.AllEstimates(ctx, "books", 10_000) // paginates transparently
//
// Error handling dispatches on the stable machine code:
//
//	var ae *client.APIError
//	if errors.As(err, &ae) && ae.Code == api.CodeAlreadyAnswered { ... }
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"tcrowd/api"
)

// Client talks to one tcrowd-server. It is safe for concurrent use.
type Client struct {
	base       string
	hc         *http.Client
	maxRetries int
	maxWait    time.Duration
}

// Option configures New.
type Option func(*Client)

// WithHTTPClient replaces the underlying *http.Client (timeouts,
// transports, instrumentation).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithMaxRetries sets how many times a retryable 429 is retried after
// honouring its Retry-After delay (default 3; 0 disables backoff).
func WithMaxRetries(n int) Option { return func(c *Client) { c.maxRetries = n } }

// WithMaxRetryWait caps a single Retry-After sleep (default 5s), guarding
// against a server asking for pathological delays.
func WithMaxRetryWait(d time.Duration) Option { return func(c *Client) { c.maxWait = d } }

// New returns a client for the server at baseURL (e.g.
// "http://127.0.0.1:8080"); a trailing slash is trimmed.
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base:       trimSlash(baseURL),
		hc:         http.DefaultClient,
		maxRetries: 3,
		maxWait:    5 * time.Second,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

func trimSlash(s string) string {
	for len(s) > 0 && s[len(s)-1] == '/' {
		s = s[:len(s)-1]
	}
	return s
}

// APIError is a non-2xx server response, decoded from the typed error
// envelope. Responses without a parseable envelope (proxies, panics)
// yield Code api.CodeBadRequest with the raw body as Message.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Code is the stable machine-readable error code (api.Code*).
	Code string
	// Message is the human-readable detail.
	Message string
	// Retryable mirrors the envelope's retryable flag.
	Retryable bool
	// Items carries per-answer failures for api.CodeBatchRejected.
	Items []api.ItemError
	// RetryAfter is the server's Retry-After hint (0 when absent).
	RetryAfter time.Duration
}

// Error implements the error interface.
func (e *APIError) Error() string {
	return fmt.Sprintf("tcrowd: %d %s: %s", e.Status, e.Code, e.Message)
}

// do issues one request (with 429 backoff) and decodes a 2xx body into
// out (skipped when out is nil).
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("tcrowd: encoding request: %w", err)
		}
	}
	for attempt := 0; ; attempt++ {
		err := c.doOnce(ctx, method, path, body, out)
		ae, ok := err.(*APIError)
		if !ok || !ae.Retryable || ae.Status != http.StatusTooManyRequests || attempt >= c.maxRetries {
			return err
		}
		wait := ae.RetryAfter
		if wait <= 0 {
			wait = time.Second
		}
		if wait > c.maxWait {
			wait = c.maxWait
		}
		t := time.NewTimer(wait)
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
	}
}

func (c *Client) doOnce(ctx context.Context, method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return decodeErr(resp)
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// decodeErr builds the *APIError for a non-2xx response.
func decodeErr(resp *http.Response) error {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	ae := &APIError{Status: resp.StatusCode}
	var env api.ErrorEnvelope
	if json.Unmarshal(raw, &env) == nil && env.Err.Code != "" {
		ae.Code = env.Err.Code
		ae.Message = env.Err.Message
		ae.Retryable = env.Err.Retryable
		ae.Items = env.Err.Items
	} else {
		ae.Code = api.CodeBadRequest
		ae.Message = string(raw)
	}
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs >= 0 {
			ae.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return ae
}

// CreateProject registers a new campaign.
func (c *Client) CreateProject(ctx context.Context, req api.CreateProjectRequest) error {
	return c.do(ctx, http.MethodPost, "/v1/projects", req, nil)
}

// Projects lists registered project ids, sorted.
func (c *Client) Projects(ctx context.Context) ([]string, error) {
	var ids []string
	err := c.do(ctx, http.MethodGet, "/v1/projects", nil, &ids)
	return ids, err
}

// Tasks requests up to count dynamically assigned cells for worker
// (count 0 = server default: one per column).
func (c *Client) Tasks(ctx context.Context, project, worker string, count int) ([]api.Task, error) {
	q := url.Values{"worker": {worker}}
	if count > 0 {
		q.Set("count", strconv.Itoa(count))
	}
	var tasks []api.Task
	err := c.do(ctx, http.MethodGet, "/v1/projects/"+url.PathEscape(project)+"/tasks?"+q.Encode(), nil, &tasks)
	return tasks, err
}

// SubmitAnswer records a single answer.
func (c *Client) SubmitAnswer(ctx context.Context, project string, a api.Answer) (*api.SubmitAnswersResponse, error) {
	var out api.SubmitAnswersResponse
	err := c.do(ctx, http.MethodPost, "/v1/projects/"+url.PathEscape(project)+"/answers",
		api.SubmitAnswersRequest{Answer: a}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// SubmitAnswers records a batch atomically in one round trip: all answers
// are validated up front (an *APIError with Code api.CodeBatchRejected and
// per-item detail reports every invalid row, and nothing is recorded), and
// an accepted batch enqueues at most one coalesced inference refresh
// however large it is. Response.Refresh == api.RefreshDeferred signals
// shard backpressure — the answers ARE recorded; slow down before the next
// batch rather than resubmitting.
func (c *Client) SubmitAnswers(ctx context.Context, project string, answers []api.Answer) (*api.SubmitAnswersResponse, error) {
	var out api.SubmitAnswersResponse
	err := c.do(ctx, http.MethodPost, "/v1/projects/"+url.PathEscape(project)+"/answers",
		api.SubmitAnswersRequest{Answers: answers}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// Estimates fetches one page of the strongly consistent truth estimates
// (cursor 0 starts; limit 0 = everything). 429s are retried with backoff;
// persistent saturation surfaces as *APIError{Code:
// api.CodeShardSaturated} — fall back to Snapshot for a non-blocking read.
func (c *Client) Estimates(ctx context.Context, project string, cursor, limit int) (*api.EstimatesResponse, error) {
	return c.estimates(ctx, project, "estimates", cursor, limit)
}

// Snapshot fetches one page of the last published estimates without ever
// waiting on inference (check Fresh for staleness).
func (c *Client) Snapshot(ctx context.Context, project string, cursor, limit int) (*api.EstimatesResponse, error) {
	return c.estimates(ctx, project, "snapshot", cursor, limit)
}

func (c *Client) estimates(ctx context.Context, project, kind string, cursor, limit int) (*api.EstimatesResponse, error) {
	q := url.Values{}
	if cursor > 0 {
		q.Set("cursor", strconv.Itoa(cursor))
	}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	path := "/v1/projects/" + url.PathEscape(project) + "/" + kind
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var out api.EstimatesResponse
	if err := c.do(ctx, http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// AllEstimates walks the estimates pagination to completion, fetching
// pageSize estimates per request (0 = one unpaginated request), and
// returns the merged result.
//
// Each page is an independent strongly consistent read, so answers
// submitted mid-walk would make later pages reflect a newer model than
// earlier ones. AllEstimates detects that via AnswersSeen and restarts
// the walk (up to 3 attempts); if writes outpace every attempt, the last
// merged result is returned with Fresh forced to false so callers can
// tell the body spans model states. For a cheap read of one stable
// published state, page Snapshot instead.
func (c *Client) AllEstimates(ctx context.Context, project string, pageSize int) (*api.EstimatesResponse, error) {
	const walkAttempts = 3
	var out *api.EstimatesResponse
	for attempt := 0; attempt < walkAttempts; attempt++ {
		first, err := c.Estimates(ctx, project, 0, pageSize)
		if err != nil {
			return nil, err
		}
		out = first
		coherent := true
		for out.NextCursor > 0 {
			page, err := c.Estimates(ctx, project, out.NextCursor, pageSize)
			if err != nil {
				return nil, err
			}
			if page.AnswersSeen != first.AnswersSeen {
				coherent = false
			}
			out.Estimates = append(out.Estimates, page.Estimates...)
			out.NextCursor = page.NextCursor
		}
		if coherent {
			return out, nil
		}
	}
	out.Fresh = false
	return out, nil
}

// Stats fetches a project's collection progress.
func (c *Client) Stats(ctx context.Context, project string) (*api.StatsResponse, error) {
	var out api.StatsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/projects/"+url.PathEscape(project)+"/stats", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ShardStats fetches the server's shard-scheduler metrics.
func (c *Client) ShardStats(ctx context.Context) (*api.ShardStatsResponse, error) {
	var out api.ShardStatsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}
